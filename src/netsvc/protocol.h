#pragma once

// NCS1: the DNS-shaped query protocol of the network serving front end.
//
// The serving tier answers "is this address inside a client network" —
// the natural wire shape for that question is the one the paper's own
// measurement rode: an RFC 1035 message. NCS1 is a strict profile of
// that format, so every packet reuses the zero-copy packet plane
// (dns::MessageView / dns::BufWriter) unchanged, and every transport
// behavior — the UDP 512-byte truncation rule, the TC-bit escalation to
// TCP — is the real DNS dance rather than an invented framing.
//
// Query (client → server): a standard DNS query header (qr=0, opcode 0,
// rd=0), 1..kMaxQuestionsPerMessage questions, no records. Question i
// asks for the address `a_i` as
//
//     <8-lowercase-hex-of-a_i>.ncs1    TXT  IN
//
// Response (server → client): header with qr=1, aa=1, the query's id;
// the query's question section echoed byte-for-byte (the 12-byte header
// is the same size both ways, so any compression pointers inside the
// echoed bytes stay valid); then exactly one TXT answer per question, in
// question order. Each answer's owner name is a compression pointer to
// its question's name, and its RDATA is a single 24-byte character-string
// — the LookupResult blob (see write_result_blob). When a batched answer
// would exceed the UDP payload cap the server instead replies with TC=1
// and zero answers, and the client escalates the chunk to TCP.
//
// A message that fails DNS validation is dropped silently (same rule as
// the resolver endpoints); a valid DNS message that violates the NCS1
// profile earns a FORMERR with the offending id, so misconfigured
// clients see an explicit rejection instead of a timeout.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/serve/serve.h"
#include "dns/packet.h"
#include "dns/types.h"
#include "net/ipv4.h"

namespace netclients::netsvc {

/// Question cap per message. 128 eight-hex questions keep the question
/// section (≤ 12 + 19 + 127·15 = 1936 bytes) far below the 0x3FFF
/// compression-pointer ceiling the response encoder relies on.
inline constexpr std::size_t kMaxQuestionsPerMessage = 128;

/// Size of the fixed LookupResult wire blob (one TXT character-string).
inline constexpr std::size_t kResultBlobSize = 24;

/// Serialized size of an NCS1 query for `count` addresses. The first
/// question spells out the ".ncs1" suffix (15-byte name + type + class =
/// 19); later ones compress the suffix to a pointer (11-byte name + type
/// + class = 15).
constexpr std::size_t query_wire_size(std::size_t count) {
  return count == 0 ? 12 : 12 + 19 + (count - 1) * 15;
}

/// Serialized size of an untruncated response to a `count`-question query
/// whose question section is `question_bytes` long (echoed verbatim).
constexpr std::size_t response_wire_size(std::size_t question_bytes,
                                         std::size_t count) {
  return 12 + question_bytes + count * (2 + 2 + 2 + 4 + 2 + 1 +
                                        kResultBlobSize);
}

/// Encodes the query for `addrs` into `arena`. Precondition: 0 <
/// addrs.size() <= kMaxQuestionsPerMessage. The span borrows the arena
/// (invalidated by the next encode into it).
std::span<const std::uint8_t> encode_query(
    std::uint16_t id, std::span<const net::Ipv4Addr> addrs,
    dns::WireArena& arena);

/// A parsed NCS1 query, viewed in place: `question_bytes` borrows the
/// packet; the vectors are reused across packets by the server (clear()
/// keeps their capacity).
struct QueryView {
  std::uint16_t id = 0;
  /// The raw question section (wire bytes 12..end-of-questions), echoed
  /// verbatim into the response.
  std::span<const std::uint8_t> question_bytes;
  /// One queried address per question, in wire order.
  std::vector<net::Ipv4Addr> addrs;
  /// Packet offset of each question's name — the response's answer owner
  /// names point here.
  std::vector<std::uint16_t> name_offsets;

  void clear() {
    id = 0;
    question_bytes = {};
    addrs.clear();
    name_offsets.clear();
  }
};

enum class ParseStatus : std::uint8_t {
  kOk,
  /// Not a valid DNS packet (or not a query at all): drop, no reply.
  kDrop,
  /// Valid DNS, invalid NCS1: reply FORMERR with out->id.
  kFormErr,
};

/// Validates `wire` against the NCS1 query profile. On kOk, `out` holds
/// the full view; on kFormErr only `out->id` is meaningful.
ParseStatus parse_query(std::span<const std::uint8_t> wire, QueryView* out);

/// Encodes the answer message for `query` (one result per question, in
/// order) into `arena`. Precondition: results.size() ==
/// query.addrs.size().
std::span<const std::uint8_t> encode_response(
    const QueryView& query,
    std::span<const core::serve::LookupResult> results,
    dns::WireArena& arena);

/// Encodes the TC=1, zero-answer form of the response (the "retry over
/// TCP" signal): header + echoed questions only.
std::span<const std::uint8_t> encode_truncated(const QueryView& query,
                                               dns::WireArena& arena);

/// Encodes a bare FORMERR response (header only) for a profile-violating
/// query.
std::span<const std::uint8_t> encode_formerr(std::uint16_t id,
                                             dns::WireArena& arena);

/// A parsed NCS1 response. `results` is reused across packets.
struct ResponseView {
  std::uint16_t id = 0;
  bool truncated = false;
  dns::RCode rcode = dns::RCode::kNoError;
  std::vector<core::serve::LookupResult> results;

  void clear() {
    id = 0;
    truncated = false;
    rcode = dns::RCode::kNoError;
    results.clear();
  }
};

/// Parses a server response zero-copy (header + answer TXT blobs; the
/// echoed questions are skipped). Returns false when `wire` is not a
/// valid DNS response or an answer blob is malformed.
bool parse_response(std::span<const std::uint8_t> wire, ResponseView* out);

/// Appends the 24-byte result blob (big-endian: flags u8, prefix_len u8,
/// prefix_base u32, asn u32, country u16, domain_mask u32, volume as
/// IEEE-754 bits u64).
void write_result_blob(const core::serve::LookupResult& result,
                       dns::BufWriter& writer);

/// Decodes a 24-byte result blob (nullopt when blob.size() !=
/// kResultBlobSize). Inverse of write_result_blob, field for field.
std::optional<core::serve::LookupResult> read_result_blob(
    std::span<const std::uint8_t> blob);

}  // namespace netclients::netsvc
