#include "netsvc/server.h"

#include <algorithm>

#include "core/obs/obs.h"
#include "netsim/endpoint.h"

namespace netclients::netsvc {

void ServerStats::publish() const {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("netsvc.server.udp_requests").add(udp_requests);
  registry.counter("netsvc.server.tcp_requests").add(tcp_requests);
  registry.counter("netsvc.server.responses").add(responses);
  registry.counter("netsvc.server.lookups").add(lookups);
  registry.counter("netsvc.server.truncated").add(truncated);
  registry.counter("netsvc.server.malformed").add(malformed);
  registry.counter("netsvc.server.formerr").add(formerr);
  registry.counter("netsvc.server.backpressure_dropped")
      .add(backpressure_dropped);
  registry.counter("netsvc.server.window_stalls").add(window_stalls);
}

Server::Server(netsim::MessageBus& bus, const core::serve::Service& service,
               net::Ipv4Addr address, ServerOptions options)
    : bus_(bus),
      service_(service),
      address_(address),
      options_(options),
      stream_(bus, address, options.stream) {
  stream_.on_frame([this](net::Ipv4Addr peer, std::uint32_t conn,
                          std::span<const std::uint8_t> frame,
                          net::SimTime now) {
    ++stats_.tcp_requests;
    // Per-connection backpressure: replies still in flight on this
    // connection fill its window; excess requests are dropped and the
    // client's retry policy owns recovery.
    auto& outstanding = conn_outstanding_[StreamSocket::key(peer, conn)];
    std::erase_if(outstanding, [now](double done_at) { return done_at <= now; });
    if (static_cast<int>(outstanding.size()) >= options_.per_conn_window) {
      ++stats_.backpressure_dropped;
      return;
    }
    double delay = 0;
    const auto reply = process(frame, now, /*udp_capped=*/false, &delay);
    if (reply.empty()) return;
    outstanding.push_back(now + delay);
    stream_.send_frame(peer, conn, reply, now, delay);
  });
  netsim::attach_payload_endpoint(
      bus_, address_,
      [this](const netsim::Datagram& d, net::SimTime now)
          -> netsim::PayloadReply {
        if (d.proto == netsim::Proto::kTcp) {
          stream_.ingest(d, now);
          return {};
        }
        ++stats_.udp_requests;
        double delay = 0;
        const auto reply =
            process(d.payload, now, /*udp_capped=*/true, &delay);
        return {reply, delay};
      });
}

Server::~Server() { bus_.detach(address_); }

std::span<const std::uint8_t> Server::process(
    std::span<const std::uint8_t> request, net::SimTime now, bool udp_capped,
    double* delay) {
  switch (parse_query(request, &query_)) {
    case ParseStatus::kDrop:
      ++stats_.malformed;
      return {};
    case ParseStatus::kFormErr:
      ++stats_.formerr;
      *delay = service_delay(now, 0);
      return encode_formerr(query_.id, arena_);
    case ParseStatus::kOk:
      break;
  }
  // One snapshot pin for the whole batch: every question is answered
  // from the same epoch set even while a publisher churns underneath.
  const core::serve::SnapshotHandle snapshot = service_.acquire();
  results_.resize(query_.addrs.size());
  snapshot->lookup_many(query_.addrs, results_.data(),
                        options_.lookup_threads);
  stats_.lookups += query_.addrs.size();
  *delay = service_delay(now, query_.addrs.size());
  auto reply = encode_response(query_, results_, arena_);
  if (udp_capped && reply.size() > options_.udp_payload_cap) {
    ++stats_.truncated;
    reply = encode_truncated(query_, arena_);
  }
  ++stats_.responses;
  return reply;
}

double Server::service_delay(net::SimTime now, std::size_t question_count) {
  // Slots whose completion deadline has passed are free again.
  slots_.drain_until(now, [](double, std::uint8_t) {});
  double issue_at = now;
  if (static_cast<int>(slots_.size()) >= std::max(1, options_.window)) {
    // Window full: the request queues until the earliest in-flight
    // service completes (that slot is consumed by this request).
    issue_at = slots_.next_deadline();
    slots_.pop();
    ++stats_.window_stalls;
  }
  const double done_at = issue_at + options_.base_service_seconds +
                         static_cast<double>(question_count) *
                             options_.per_query_service_seconds;
  slots_.push(done_at, 0);
  return (done_at - now) + options_.reply_latency;
}

}  // namespace netclients::netsvc
