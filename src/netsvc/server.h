#pragma once

// The network query server: `serve::Service` behind a bus address.
//
// One address serves both transports. UDP queries arrive as datagrams
// through `netsim::attach_payload_endpoint` (the same plumbing the DNS
// resolver endpoints ride); TCP queries arrive as length-framed messages
// through a `StreamSocket` multiplexed on the same address. Either way a
// request is parsed against the NCS1 profile (protocol.h), answered from
// exactly one `SnapshotHandle` pinned for the whole batch — live
// `publish()` churn never blocks the batch and never splits it across
// epochs — and encoded back onto the transport it arrived on. Responses
// that would not fit the UDP payload cap are replaced by a TC=1 header
// so the client escalates the chunk to TCP.
//
// Timing rides the virtual clock, modeled exactly like the probe
// engine's timing plane (core/engine): the server owns a bounded window
// of service slots tracked on an `engine::Timeline`. A request issues
// when a slot is free (or at the earliest slot-completion deadline when
// the window is full — counted as a window stall), completes after a
// batch-size-dependent service time, and its reply leaves at completion.
// Per-connection backpressure bounds how many replies may be in flight
// per TCP connection; excess requests are dropped (skip-and-count — the
// client's retry policy owns recovery). Every decision is a pure
// function of the deterministic bus delivery order, so serving runs are
// byte-identical at any REPRO_THREADS.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine/timeline.h"
#include "core/serve/service.h"
#include "dns/packet.h"
#include "net/ipv4.h"
#include "netsim/bus.h"
#include "netsvc/protocol.h"
#include "netsvc/transport.h"

namespace netclients::netsvc {

struct ServerOptions {
  /// Largest UDP response payload; bigger answers become TC=1 replies.
  /// Matches the bus's classic DNS MTU by default.
  std::size_t udp_payload_cap = 512;
  /// Threads for each batch's lookup_many (<= 0: REPRO_THREADS).
  int lookup_threads = 0;
  /// Concurrent service slots (the in-flight window of the virtual-time
  /// service model). Reshapes latency only, never answers.
  int window = 8;
  /// Modeled service time: fixed per request + linear per question.
  double base_service_seconds = 100e-6;
  double per_query_service_seconds = 2e-6;
  /// Propagation latency of a reply datagram/segment.
  double reply_latency = 0.01;
  /// Max replies in flight per TCP connection; requests beyond it are
  /// dropped (backpressure — the client retries).
  int per_conn_window = 4;
  StreamOptions stream;
};

/// Event counts of one server. Opt-in publish(), BusStats-style.
struct ServerStats {
  std::uint64_t udp_requests = 0;
  std::uint64_t tcp_requests = 0;
  std::uint64_t responses = 0;
  /// Addresses looked up (sum of batch sizes).
  std::uint64_t lookups = 0;
  /// UDP responses replaced by a TC=1 header.
  std::uint64_t truncated = 0;
  /// Requests dropped for failing DNS validation.
  std::uint64_t malformed = 0;
  /// DNS-valid requests refused with FORMERR for violating NCS1.
  std::uint64_t formerr = 0;
  /// TCP requests dropped by per-connection backpressure.
  std::uint64_t backpressure_dropped = 0;
  /// Requests whose issue waited on a free service slot.
  std::uint64_t window_stalls = 0;

  /// Registers the values as `netsvc.server.*` counters in the global
  /// registry. Call once per run.
  void publish() const;
};

class Server {
 public:
  /// Attaches to `bus` at `address`. `service` (and the bus) must outlive
  /// the server; the server detaches on destruction.
  Server(netsim::MessageBus& bus, const core::serve::Service& service,
         net::Ipv4Addr address, ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  net::Ipv4Addr address() const { return address_; }
  const ServerStats& stats() const { return stats_; }
  const StreamStats& stream_stats() const { return stream_.stats(); }

 private:
  /// Parses and answers one request; returns the reply bytes (empty:
  /// drop) and writes the modeled reply delay into `*delay`. `udp_capped`
  /// selects the truncation rule.
  std::span<const std::uint8_t> process(std::span<const std::uint8_t> request,
                                        net::SimTime now, bool udp_capped,
                                        double* delay);

  /// Virtual-time service model: returns the reply delay (service
  /// completion − now + propagation) for a `question_count`-question
  /// batch arriving at `now`.
  double service_delay(net::SimTime now, std::size_t question_count);

  netsim::MessageBus& bus_;
  const core::serve::Service& service_;
  net::Ipv4Addr address_;
  ServerOptions options_;
  StreamSocket stream_;
  dns::WireArena arena_;
  QueryView query_;                                  // reused per request
  std::vector<core::serve::LookupResult> results_;   // reused per request
  /// Completion deadlines of occupied service slots.
  core::engine::Timeline<std::uint8_t> slots_;
  /// Outstanding reply deadlines per TCP connection (pruned as the
  /// clock passes them).
  std::unordered_map<std::uint64_t, std::vector<double>> conn_outstanding_;
  ServerStats stats_;
};

}  // namespace netclients::netsvc
