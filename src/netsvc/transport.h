#pragma once

// Stream transport over the datagram bus: RFC 1035 §4.2.2 TCP framing.
//
// The bus carries datagrams; DNS-over-TCP carries a byte stream of
// 2-byte-length-prefixed messages. `StreamSocket` bridges the two: a
// frame (one wire message) is length-prefixed, cut into MSS-sized
// segments, and each segment rides the bus as a `Proto::kTcp` datagram
// tagged with (connection id, stream offset). The receiver reassembles
// per connection — segments must arrive in offset order; a gap (a lost,
// reordered, or blackholed segment) resets the connection, because
// without real TCP retransmission a gapped stream can never resynchronize
// on frame boundaries. Reset is skip-and-count, never hang: the peer's
// retry opens a fresh connection id and starts at offset zero.
//
// The socket does not attach itself to the bus: its owner registers one
// bus handler per address and routes `Proto::kTcp` datagrams into
// `ingest` (the netsvc server multiplexes UDP queries and TCP segments
// on one address this way).
//
// Determinism: segments of one frame are sent with identical latency, so
// the bus's (deliver_at, sequence) order preserves send order on a
// fault-free link; FaultPlane verdicts are keyed by (seed, src, dst,
// sequence) and replay byte-identically.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "netsim/bus.h"

namespace netclients::netsvc {

struct StreamOptions {
  /// Largest accepted frame. The RFC 1035 length prefix caps this at
  /// 0xFFFF; anything larger declared by a peer resets the connection.
  std::size_t max_frame = 0xFFFF;
  /// Stream bytes per segment (the modeled MSS).
  std::size_t segment_bytes = 1200;
  /// Reassembly-state bound: at most this many live inbound connections;
  /// opening one more evicts the oldest.
  std::size_t max_connections = 64;
};

/// Event counts of one socket. Opt-in publish(), BusStats-style.
struct StreamStats {
  std::uint64_t segments_in = 0;
  std::uint64_t segments_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Connections dropped on a stream gap or oversize frame declaration.
  std::uint64_t resets = 0;
  /// Segments for an unknown connection not starting at offset zero
  /// (the tail of an already-reset stream), or with a short header.
  std::uint64_t orphan_segments = 0;
  /// Zero-length frames skipped (legal no-ops in the stream).
  std::uint64_t zero_frames = 0;
  /// Frames refused for declaring a length above max_frame.
  std::uint64_t oversize_frames = 0;
  /// Reassembly states evicted by the max_connections bound.
  std::uint64_t evicted = 0;

  /// Registers the values as `netsvc.stream.<prefix>.*` counters in the
  /// global registry ("client"/"server" prefixes keep the two sides'
  /// exports distinct). Call once per run.
  void publish(std::string_view prefix) const;
};

class StreamSocket {
 public:
  /// Called for every completely reassembled frame. The span borrows the
  /// connection's reassembly buffer — valid only during the call. The
  /// handler must not call close() on the delivering connection.
  using FrameHandler =
      std::function<void(net::Ipv4Addr peer, std::uint32_t conn,
                         std::span<const std::uint8_t> frame,
                         net::SimTime now)>;

  StreamSocket(netsim::MessageBus& bus, net::Ipv4Addr local,
               StreamOptions options = {})
      : bus_(bus), local_(local), options_(options) {}

  void on_frame(FrameHandler handler) { on_frame_ = std::move(handler); }

  /// Feeds one inbound `Proto::kTcp` datagram into reassembly; fires
  /// `on_frame` for each frame it completes.
  void ingest(const netsim::Datagram& datagram, net::SimTime now);

  /// Length-prefixes `frame`, segments it, and sends every segment to
  /// `peer` at `now` with `latency`. Precondition: frame.size() <=
  /// max_frame.
  void send_frame(net::Ipv4Addr peer, std::uint32_t conn,
                  std::span<const std::uint8_t> frame, net::SimTime now,
                  double latency);

  /// Drops all local state for (peer, conn) — both the inbound
  /// reassembly buffer and the outbound offset. Not counted as a reset.
  void close(net::Ipv4Addr peer, std::uint32_t conn);

  const StreamStats& stats() const { return stats_; }

  /// Canonical map key for one (peer, connection) pair — shared with
  /// owners that keep their own per-connection state (the server's
  /// backpressure windows).
  static std::uint64_t key(net::Ipv4Addr peer, std::uint32_t conn) {
    return (std::uint64_t{peer.value()} << 32) | conn;
  }

 private:
  struct RecvState {
    std::uint32_t expected_offset = 0;
    std::vector<std::uint8_t> buffer;
    std::uint64_t opened_seq = 0;  // eviction order
  };

  /// Extracts every complete frame from the connection's buffer; returns
  /// false when the stream declared an oversize frame (caller resets).
  bool drain_frames(net::Ipv4Addr peer, std::uint32_t conn, RecvState& state,
                    net::SimTime now);

  netsim::MessageBus& bus_;
  net::Ipv4Addr local_;
  StreamOptions options_;
  FrameHandler on_frame_;
  std::unordered_map<std::uint64_t, RecvState> recv_;
  std::unordered_map<std::uint64_t, std::uint32_t> send_offsets_;
  std::uint64_t next_opened_seq_ = 0;
  StreamStats stats_;
};

}  // namespace netclients::netsvc
