#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/prefix.h"

namespace netclients::dns {

/// EDNS0 Client Subnet option (RFC 7871).
///
/// In a query, `source_prefix_length` is the prefix the client asks the
/// resolver to use and `scope_prefix_length` must be 0. In a response, the
/// authoritative sets `scope_prefix_length` to the prefix granularity its
/// answer is valid for — possibly shorter (less specific) than the query's
/// source length, which is exactly the behaviour the paper's probing-
/// reduction preprocessing exploits (§3.1.1, Appendix A.2).
struct EcsOption {
  static constexpr std::uint16_t kOptionCode = 8;  // IANA: edns-client-subnet
  static constexpr std::uint16_t kFamilyIpv4 = 1;

  net::Ipv4Addr address;
  std::uint8_t source_prefix_length = 0;
  std::uint8_t scope_prefix_length = 0;

  /// Builds a query option asking for `prefix` (scope 0 per RFC 7871 §6).
  static EcsOption for_query(net::Prefix prefix) {
    return {prefix.base(), prefix.length(), 0};
  }

  /// The prefix announced by the *source* field.
  net::Prefix source_prefix() const {
    return net::Prefix(address, source_prefix_length);
  }

  /// The prefix the response is scoped to. A scope of 0 means the answer is
  /// not client-specific (cacheable for everyone) — the paper discards such
  /// hits since they carry no per-prefix activity signal.
  net::Prefix scope_prefix() const {
    return net::Prefix(address, scope_prefix_length);
  }

  std::string to_string() const {
    return source_prefix().to_string() + "/scope=" +
           std::to_string(scope_prefix_length);
  }

  friend bool operator==(const EcsOption&, const EcsOption&) = default;
};

}  // namespace netclients::dns
