#pragma once

#include <cstdint>
#include <string_view>

namespace netclients::dns {

/// Resource record types used by the pipeline. Values are IANA assignments.
enum class RecordType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,  // EDNS0 pseudo-RR carrying the ECS option
};

/// Response codes (RFC 1035 §4.1.1 + EDNS extensions we need).
enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

inline constexpr std::uint16_t kClassIn = 1;

constexpr std::string_view to_string(RecordType type) {
  switch (type) {
    case RecordType::kA: return "A";
    case RecordType::kNs: return "NS";
    case RecordType::kCname: return "CNAME";
    case RecordType::kSoa: return "SOA";
    case RecordType::kTxt: return "TXT";
    case RecordType::kAaaa: return "AAAA";
    case RecordType::kOpt: return "OPT";
  }
  return "?";
}

constexpr std::string_view to_string(RCode rcode) {
  switch (rcode) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNxDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "?";
}

}  // namespace netclients::dns
