#include "dns/name.h"

#include <cctype>

#include "net/rng.h"

namespace netclients::dns {
namespace {

bool valid_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

}  // namespace

char canonical_lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text == "." || text.empty()) return DnsName{};
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    std::string_view label = dot == std::string_view::npos
                                 ? text.substr(start)
                                 : text.substr(start, dot - start);
    if (label.empty() || label.size() > 63) return std::nullopt;
    std::string canonical;
    canonical.reserve(label.size());
    for (char c : label) {
      if (!valid_label_char(c)) return std::nullopt;
      canonical.push_back(canonical_lower(c));
    }
    labels.push_back(std::move(canonical));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return from_labels(std::move(labels));
}

std::optional<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  std::size_t wire = 1;  // root terminator
  for (auto& label : labels) {
    if (label.empty() || label.size() > 63) return std::nullopt;
    for (auto& c : label) c = canonical_lower(c);
    wire += 1 + label.size();
  }
  if (wire > 255) return std::nullopt;
  DnsName name;
  name.labels_ = std::move(labels);
  std::uint64_t h = 0x5851f42d4c957f2dULL;
  for (const auto& label : name.labels_) {
    h = net::hash_combine(h, net::stable_hash(label));
  }
  name.hash_ = h;
  return name;
}

std::size_t DnsName::wire_length() const {
  std::size_t wire = 1;
  for (const auto& label : labels_) wire += 1 + label.size();
  return wire;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

}  // namespace netclients::dns

std::size_t std::hash<netclients::dns::DnsName>::operator()(
    const netclients::dns::DnsName& name) const noexcept {
  return static_cast<std::size_t>(name.hash());
}
