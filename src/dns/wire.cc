#include "dns/wire.h"

#include "dns/packet.h"

namespace netclients::dns {

// Both entry points are thin owning wrappers over the zero-copy packet
// plane (dns/packet.h), so the copying and non-copying paths cannot drift:
// encode is encode_into plus a copy out of the arena; decode is
// MessageView::parse plus materialize.

std::vector<std::uint8_t> encode(const DnsMessage& message) {
  thread_local WireArena arena;
  const std::span<const std::uint8_t> wire = encode_into(message, arena);
  return {wire.begin(), wire.end()};
}

DecodeResult decode(std::span<const std::uint8_t> wire) {
  std::string error;
  auto view = MessageView::parse(wire, &error);
  if (!view) return DecodeResult::failure(std::move(error));
  return DecodeResult::success(view->materialize());
}

}  // namespace netclients::dns
