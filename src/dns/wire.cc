#include "dns/wire.h"

#include <map>

namespace netclients::dns {
namespace {

// ---------------------------------------------------------------- encoding

class Encoder {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

  /// Patches a previously written 16-bit length field.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  /// Writes `name` with RFC 1035 §4.1.4 compression: the longest previously
  /// emitted suffix is replaced by a pointer.
  void name(const DnsName& name) {
    const auto& labels = name.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::string suffix = join_suffix(labels, i);
      auto it = suffix_offsets_.find(suffix);
      if (it != suffix_offsets_.end() && it->second < 0x3FFF) {
        u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      if (out_.size() < 0x3FFF) suffix_offsets_.emplace(suffix, out_.size());
      u8(static_cast<std::uint8_t>(labels[i].size()));
      bytes({reinterpret_cast<const std::uint8_t*>(labels[i].data()),
             labels[i].size()});
    }
    u8(0);  // root
  }

 private:
  static std::string join_suffix(const std::vector<std::string>& labels,
                                 std::size_t from) {
    std::string out;
    for (std::size_t i = from; i < labels.size(); ++i) {
      out += labels[i];
      out.push_back('.');
    }
    return out;
  }

  std::vector<std::uint8_t> out_;
  std::map<std::string, std::size_t> suffix_offsets_;
};

void encode_rdata(Encoder& enc, const ResourceRecord& rr) {
  std::size_t len_at = enc.size();
  enc.u16(0);  // placeholder
  std::size_t start = enc.size();
  if (const auto* a = std::get_if<AData>(&rr.rdata)) {
    enc.u32(a->address.value());
  } else if (const auto* txt = std::get_if<TxtData>(&rr.rdata)) {
    // Split into 255-byte character-strings.
    std::string_view rest = txt->text;
    do {
      std::string_view chunk = rest.substr(0, 255);
      rest.remove_prefix(chunk.size());
      enc.u8(static_cast<std::uint8_t>(chunk.size()));
      enc.bytes({reinterpret_cast<const std::uint8_t*>(chunk.data()),
                 chunk.size()});
    } while (!rest.empty());
  } else {
    const auto& raw = std::get<RawData>(rr.rdata);
    enc.bytes(raw.bytes);
  }
  enc.patch_u16(len_at, static_cast<std::uint16_t>(enc.size() - start));
}

void encode_record(Encoder& enc, const ResourceRecord& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  enc.u16(rr.rclass);
  enc.u32(rr.ttl);
  encode_rdata(enc, rr);
}

void encode_opt(Encoder& enc, const EdnsInfo& edns) {
  enc.u8(0);  // root owner name
  enc.u16(static_cast<std::uint16_t>(RecordType::kOpt));
  enc.u16(edns.udp_payload_size);  // CLASS = requestor's UDP payload size
  enc.u32(0);                      // extended RCODE/flags
  std::size_t len_at = enc.size();
  enc.u16(0);
  std::size_t start = enc.size();
  if (edns.ecs) {
    const EcsOption& ecs = *edns.ecs;
    const unsigned addr_bytes = (ecs.source_prefix_length + 7) / 8;
    enc.u16(EcsOption::kOptionCode);
    enc.u16(static_cast<std::uint16_t>(4 + addr_bytes));
    enc.u16(EcsOption::kFamilyIpv4);
    enc.u8(ecs.source_prefix_length);
    enc.u8(ecs.scope_prefix_length);
    std::uint32_t addr = ecs.address.value();
    for (unsigned i = 0; i < addr_bytes; ++i) {
      enc.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
    }
  }
  enc.patch_u16(len_at, static_cast<std::uint16_t>(enc.size() - start));
}

// ---------------------------------------------------------------- decoding

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool fail(std::string why) {
    if (error_.empty()) error_ = std::move(why);
    return false;
  }
  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > wire_.size()) return fail("truncated u8");
    out = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos_ + 2 > wire_.size()) return fail("truncated u16");
    out = static_cast<std::uint16_t>(wire_[pos_] << 8 | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }

  bool name(DnsName& out) {
    std::vector<std::string> labels;
    std::size_t cursor = pos_;
    bool jumped = false;
    int hops = 0;
    std::size_t wire_len = 1;
    while (true) {
      if (cursor >= wire_.size()) return fail("truncated name");
      std::uint8_t len = wire_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 1 >= wire_.size()) return fail("truncated pointer");
        std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
        if (!jumped) pos_ = cursor + 2;
        if (target >= cursor) return fail("forward compression pointer");
        if (++hops > 64) return fail("compression pointer loop");
        cursor = target;
        jumped = true;
        continue;
      }
      if (len & 0xC0) return fail("reserved label type");
      if (len == 0) {
        if (!jumped) pos_ = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size()) return fail("truncated label");
      wire_len += 1 + len;
      if (wire_len > 255) return fail("name too long");
      labels.emplace_back(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      cursor += 1 + len;
    }
    auto parsed = DnsName::from_labels(std::move(labels));
    if (!parsed) return fail("invalid name labels");
    out = std::move(*parsed);
    return true;
  }

  bool bytes(std::size_t count, std::vector<std::uint8_t>& out) {
    if (pos_ + count > wire_.size()) return fail("truncated rdata");
    out.assign(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
               wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return true;
  }

  std::size_t pos() const { return pos_; }
  void seek(std::size_t pos) { pos_ = pos; }
  std::size_t remaining() const { return wire_.size() - pos_; }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool decode_ecs(std::span<const std::uint8_t> data, EcsOption& out,
                Decoder& dec) {
  if (data.size() < 4) return dec.fail("short ECS option");
  std::uint16_t family = static_cast<std::uint16_t>(data[0] << 8 | data[1]);
  std::uint8_t source_len = data[2];
  std::uint8_t scope_len = data[3];
  if (family != EcsOption::kFamilyIpv4) return dec.fail("non-IPv4 ECS");
  if (source_len > 32 || scope_len > 32) return dec.fail("ECS length > 32");
  const unsigned addr_bytes = (source_len + 7) / 8;
  if (data.size() != 4 + addr_bytes) return dec.fail("bad ECS address size");
  std::uint32_t addr = 0;
  for (unsigned i = 0; i < addr_bytes; ++i) {
    addr |= std::uint32_t{data[4 + i]} << (24 - 8 * i);
  }
  out.address = net::Ipv4Addr(addr & net::Prefix::mask(source_len));
  out.source_prefix_length = source_len;
  out.scope_prefix_length = scope_len;
  return true;
}

bool decode_record(Decoder& dec, DnsMessage& msg) {
  ResourceRecord rr;
  if (!dec.name(rr.name)) return false;
  std::uint16_t type = 0, rclass = 0, rdlength = 0;
  std::uint32_t ttl = 0;
  if (!dec.u16(type) || !dec.u16(rclass) || !dec.u32(ttl) ||
      !dec.u16(rdlength)) {
    return false;
  }
  rr.type = static_cast<RecordType>(type);
  rr.rclass = rclass;
  rr.ttl = ttl;
  std::vector<std::uint8_t> rdata;
  if (!dec.bytes(rdlength, rdata)) return false;

  if (rr.type == RecordType::kOpt) {
    if (!rr.name.is_root()) return dec.fail("OPT owner must be root");
    EdnsInfo edns;
    edns.udp_payload_size = rclass;
    std::size_t at = 0;
    while (at < rdata.size()) {
      if (at + 4 > rdata.size()) return dec.fail("truncated EDNS option");
      std::uint16_t code =
          static_cast<std::uint16_t>(rdata[at] << 8 | rdata[at + 1]);
      std::uint16_t optlen =
          static_cast<std::uint16_t>(rdata[at + 2] << 8 | rdata[at + 3]);
      at += 4;
      if (at + optlen > rdata.size()) return dec.fail("truncated EDNS option");
      if (code == EcsOption::kOptionCode) {
        EcsOption ecs;
        if (!decode_ecs({rdata.data() + at, optlen}, ecs, dec)) return false;
        edns.ecs = ecs;
      }
      at += optlen;
    }
    msg.edns = edns;
    return true;  // OPT is lifted out of additionals
  }

  if (rr.type == RecordType::kA && rclass == kClassIn) {
    if (rdata.size() != 4) return dec.fail("A rdata must be 4 bytes");
    rr.rdata = AData{net::Ipv4Addr((std::uint32_t{rdata[0]} << 24) |
                                   (std::uint32_t{rdata[1]} << 16) |
                                   (std::uint32_t{rdata[2]} << 8) |
                                   std::uint32_t{rdata[3]})};
  } else if (rr.type == RecordType::kTxt && rclass == kClassIn) {
    TxtData txt;
    std::size_t at = 0;
    while (at < rdata.size()) {
      std::uint8_t len = rdata[at++];
      if (at + len > rdata.size()) return dec.fail("truncated TXT string");
      txt.text.append(reinterpret_cast<const char*>(rdata.data() + at), len);
      at += len;
    }
    rr.rdata = std::move(txt);
  } else {
    rr.rdata = RawData{std::move(rdata)};
  }
  msg.additionals.push_back(std::move(rr));
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode(const DnsMessage& message) {
  Encoder enc;
  const Header& h = message.header;
  enc.u16(h.id);
  std::uint16_t flags = 0;
  flags |= static_cast<std::uint16_t>(h.qr) << 15;
  flags |= static_cast<std::uint16_t>(h.opcode & 0xF) << 11;
  flags |= static_cast<std::uint16_t>(h.aa) << 10;
  flags |= static_cast<std::uint16_t>(h.tc) << 9;
  flags |= static_cast<std::uint16_t>(h.rd) << 8;
  flags |= static_cast<std::uint16_t>(h.ra) << 7;
  flags |= static_cast<std::uint16_t>(h.rcode) & 0xF;
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(message.questions.size()));
  enc.u16(static_cast<std::uint16_t>(message.answers.size()));
  enc.u16(static_cast<std::uint16_t>(message.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(message.additionals.size() +
                                     (message.edns ? 1 : 0)));
  for (const auto& q : message.questions) {
    enc.name(q.name);
    enc.u16(static_cast<std::uint16_t>(q.type));
    enc.u16(q.qclass);
  }
  for (const auto& rr : message.answers) encode_record(enc, rr);
  for (const auto& rr : message.authorities) encode_record(enc, rr);
  for (const auto& rr : message.additionals) encode_record(enc, rr);
  if (message.edns) encode_opt(enc, *message.edns);
  return enc.take();
}

DecodeResult decode(std::span<const std::uint8_t> wire) {
  Decoder dec(wire);
  DnsMessage msg;
  std::uint16_t flags = 0, qd = 0, an = 0, ns = 0, ar = 0;
  if (!dec.u16(msg.header.id) || !dec.u16(flags) || !dec.u16(qd) ||
      !dec.u16(an) || !dec.u16(ns) || !dec.u16(ar)) {
    return DecodeResult::failure(dec.error());
  }
  msg.header.qr = flags & 0x8000;
  msg.header.opcode = (flags >> 11) & 0xF;
  msg.header.aa = flags & 0x0400;
  msg.header.tc = flags & 0x0200;
  msg.header.rd = flags & 0x0100;
  msg.header.ra = flags & 0x0080;
  msg.header.rcode = static_cast<RCode>(flags & 0xF);

  for (int i = 0; i < qd; ++i) {
    Question q;
    std::uint16_t type = 0;
    if (!dec.name(q.name) || !dec.u16(type) || !dec.u16(q.qclass)) {
      return DecodeResult::failure(dec.error());
    }
    q.type = static_cast<RecordType>(type);
    msg.questions.push_back(std::move(q));
  }

  // Records land in `additionals` inside decode_record; move them to the
  // right section afterwards by decoding counts in order.
  auto decode_section = [&](int count, std::vector<ResourceRecord>& section) {
    for (int i = 0; i < count; ++i) {
      std::size_t before = msg.additionals.size();
      if (!decode_record(dec, msg)) return false;
      if (msg.additionals.size() > before) {
        section.push_back(std::move(msg.additionals.back()));
        msg.additionals.pop_back();
      }
      // else: the record was an OPT, lifted into msg.edns.
    }
    return true;
  };
  std::vector<ResourceRecord> additionals;
  if (!decode_section(an, msg.answers) ||
      !decode_section(ns, msg.authorities) ||
      !decode_section(ar, additionals)) {
    return DecodeResult::failure(dec.error());
  }
  msg.additionals = std::move(additionals);
  if (dec.remaining() != 0) {
    return DecodeResult::failure("trailing bytes after message");
  }
  return DecodeResult::success(std::move(msg));
}

}  // namespace netclients::dns
