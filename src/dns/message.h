#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/ecs.h"
#include "dns/name.h"
#include "dns/types.h"
#include "net/ipv4.h"

namespace netclients::dns {

struct Question {
  DnsName name;
  RecordType type = RecordType::kA;
  std::uint16_t qclass = kClassIn;

  friend bool operator==(const Question&, const Question&) = default;
};

/// RDATA payloads. Anything the codec doesn't model natively round-trips
/// through RawData untouched.
struct AData {
  net::Ipv4Addr address;
  friend bool operator==(const AData&, const AData&) = default;
};
struct TxtData {
  std::string text;  // single character-string; split at 255 bytes on wire
  friend bool operator==(const TxtData&, const TxtData&) = default;
};
struct RawData {
  std::vector<std::uint8_t> bytes;
  friend bool operator==(const RawData&, const RawData&) = default;
};
using RData = std::variant<AData, TxtData, RawData>;

struct ResourceRecord {
  DnsName name;
  RecordType type = RecordType::kA;
  std::uint16_t rclass = kClassIn;
  std::uint32_t ttl = 0;
  RData rdata;

  friend bool operator==(const ResourceRecord&,
                         const ResourceRecord&) = default;
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired — cache snooping sets this to FALSE
  bool ra = false;  // recursion available
  std::uint8_t opcode = 0;
  RCode rcode = RCode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

/// EDNS0 (OPT pseudo-record) state, carrying at most one ECS option.
struct EdnsInfo {
  std::uint16_t udp_payload_size = 4096;
  std::optional<EcsOption> ecs;

  friend bool operator==(const EdnsInfo&, const EdnsInfo&) = default;
};

/// A DNS message. The OPT record is lifted out of the additional section
/// into `edns` on decode and re-synthesized on encode.
struct DnsMessage {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  // excluding OPT
  std::optional<EdnsInfo> edns;

  friend bool operator==(const DnsMessage&, const DnsMessage&) = default;
};

/// Builds a query. `recursion_desired = false` is the cache-snooping mode:
/// a resolver must answer only from cache (verified for Google Public DNS by
/// the paper and by Trufflehunter [31]).
DnsMessage make_query(std::uint16_t id, const DnsName& name, RecordType type,
                      bool recursion_desired,
                      std::optional<EcsOption> ecs = std::nullopt);

/// Builds a response skeleton echoing the query's id/question/ECS.
DnsMessage make_response(const DnsMessage& query, RCode rcode);

}  // namespace netclients::dns
