#include "dns/message.h"

namespace netclients::dns {

DnsMessage make_query(std::uint16_t id, const DnsName& name, RecordType type,
                      bool recursion_desired, std::optional<EcsOption> ecs) {
  DnsMessage msg;
  msg.header.id = id;
  msg.header.rd = recursion_desired;
  msg.questions.push_back(Question{name, type, kClassIn});
  if (ecs) {
    msg.edns = EdnsInfo{};
    msg.edns->ecs = *ecs;
  }
  return msg;
}

DnsMessage make_response(const DnsMessage& query, RCode rcode) {
  DnsMessage msg;
  msg.header = query.header;
  msg.header.qr = true;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  if (query.edns) {
    msg.edns = EdnsInfo{};
    msg.edns->ecs = query.edns->ecs;
  }
  return msg;
}

}  // namespace netclients::dns
