#pragma once

// Zero-copy packet plane for the RFC 1035 wire format.
//
// The original codec in wire.h materialized every packet into a DnsMessage
// (a vector per section, a string per label) before anything could look at
// it, and allocated a fresh output vector plus a std::map of suffix
// offsets per encode. At packet-plane rates — every probe, every upstream
// round trip, every captured DITL packet — both costs dominate the actual
// protocol work. This header is the allocation-free alternative:
//
//  * PacketReader — a bounds-checked forward cursor over immutable wire
//    bytes; every primitive either advances or records the first error.
//  * BufWriter / WireArena — an append writer over arena-owned buffers.
//    The arena keeps its output vector and its name-compression side
//    tables alive across messages, so steady-state encode performs no
//    heap allocation at all.
//  * NameView — a non-owning DNS name: an offset into the packet plus
//    cached label/length counts from validation. Labels are handed out as
//    string_views over the packet bytes; compression pointers are followed
//    on every walk (they were capped and validated once, at parse).
//  * MessageView — a non-owning decoded message: header and EDNS/ECS
//    decoded inline (fixed size), sections exposed as validated offsets
//    iterated on demand. Parsing performs the complete validation pass of
//    the materializing decoder — same accept/reject set, byte for byte —
//    but touches no heap; decode-inspect-drop costs no copies.
//    materialize() produces exactly what dns::decode yields (decode() is
//    in fact implemented as parse + materialize, so the two cannot drift).
//
// Ownership and lifetime: a MessageView (and every NameView/RecordView/
// string_view derived from it) borrows the packet buffer it was parsed
// from and is valid only while those bytes are alive and unmodified.
// Spans returned by BufWriter/encode_into borrow their arena and are
// invalidated by the next encode into the same arena. Consumers that
// outlive the packet must materialize().

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/message.h"

namespace netclients::dns {

/// Bounds-checked forward reader over wire bytes. All primitives return
/// false (and latch the first error) instead of reading out of bounds.
class PacketReader {
 public:
  explicit PacketReader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool fail(std::string_view why) {
    if (error_.empty()) error_ = why;
    return false;
  }
  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > wire_.size()) return fail("truncated u8");
    out = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos_ + 2 > wire_.size()) return fail("truncated u16");
    out = static_cast<std::uint16_t>(wire_[pos_] << 8 | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }
  /// Borrows `count` bytes from the packet (no copy).
  bool bytes(std::size_t count, std::span<const std::uint8_t>& out) {
    if (count > wire_.size() - pos_ || pos_ > wire_.size()) {
      return fail("truncated rdata");
    }
    out = wire_.subspan(pos_, count);
    pos_ += count;
    return true;
  }
  bool skip(std::size_t count) {
    if (count > wire_.size() - pos_) return fail("truncated skip");
    pos_ += count;
    return true;
  }

  std::size_t pos() const { return pos_; }
  void seek(std::size_t pos) { pos_ = pos; }
  std::size_t remaining() const { return wire_.size() - pos_; }
  std::span<const std::uint8_t> wire() const { return wire_; }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// A non-owning DNS name inside a packet: the packet bytes plus the offset
/// where the name starts. Constructed only by MessageView parsing, which
/// validated the name (bounds, label lengths, 255-octet wire cap, pointer
/// direction, and the 64-hop jump cap) — so walks cannot escape the
/// packet. Labels are raw packet bytes: not lowercased the way a
/// materialized DnsName is; the hashing/equality helpers canonicalize on
/// the fly so lookups agree with DnsName exactly.
class NameView {
 public:
  NameView() = default;

  std::size_t label_count() const { return label_count_; }
  bool is_root() const { return label_count_ == 0; }
  bool is_single_label() const { return label_count_ == 1; }
  /// Uncompressed wire length (label bytes + length octets + terminator).
  std::size_t wire_length() const { return wire_length_; }
  /// Offset of the name's first byte within the packet it was parsed
  /// from. Encoders echoing a packet's questions can emit a compression
  /// pointer (0xC000 | offset) at this offset instead of re-writing the
  /// name — the netsvc responder's answer owner names work this way.
  std::size_t packet_offset() const { return offset_; }

  /// First label's bytes (raw case). Precondition: !is_root().
  std::string_view first_label() const;

  /// Visits every label in order, following compression pointers.
  template <typename Fn>
  void for_each_label(Fn&& fn) const {
    std::size_t cursor = offset_;
    int hops = 0;
    while (cursor < wire_.size()) {
      const std::uint8_t len = wire_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 1 >= wire_.size() || ++hops > kMaxPointerHops) return;
        cursor = (static_cast<std::size_t>(len & 0x3F) << 8) |
                 wire_[cursor + 1];
        continue;
      }
      if (len == 0 || (len & 0xC0)) return;
      fn(std::string_view(
          reinterpret_cast<const char*>(wire_.data()) + cursor + 1, len));
      cursor += 1 + len;
    }
  }

  /// The stable hash a materialized DnsName would carry (labels lowercased
  /// on the fly) — what makes heterogeneous map lookups possible.
  std::uint64_t canonical_hash() const;
  /// Case-insensitive comparison against a canonical DnsName.
  bool equals(const DnsName& name) const;

  /// Deep copy into an owning, canonicalized DnsName. Validation at parse
  /// enforced exactly from_labels' structural limits, so this cannot fail.
  DnsName materialize() const;

  /// RFC 1035 §4.1.4 caps pointer chains implicitly (each must point
  /// strictly backwards); we additionally cap hops so a hostile packet
  /// cannot make a walk quadratic.
  static constexpr int kMaxPointerHops = 64;

 private:
  friend class MessageView;
  friend bool parse_name(PacketReader& reader, NameView* out);

  std::span<const std::uint8_t> wire_;
  std::uint32_t offset_ = 0;
  std::uint8_t label_count_ = 0;
  std::uint16_t wire_length_ = 1;
};

/// Validates and indexes the name at the reader's position, mirroring the
/// materializing decoder's rules exactly: truncation, reserved label
/// types, forward pointers, the 64-hop cap, and the 255-octet name limit.
/// Advances the reader past the name's in-place bytes.
bool parse_name(PacketReader& reader, NameView* out);

/// Reusable encode state. Keeps the output buffer and the compression
/// side tables warm across messages; after the first few encodes the hot
/// path performs no allocation. Not thread-safe — use one arena per
/// thread (the resolver front ends keep one thread_local each).
class WireArena {
 public:
  /// Bytes of the most recent encode (valid until the next encode).
  std::span<const std::uint8_t> last() const {
    return {out_.data(), out_.size()};
  }

 private:
  friend class BufWriter;

  struct Suffix {
    std::uint32_t pool_offset;  // canonical suffix bytes in pool_
    std::uint16_t pool_length;
    std::uint16_t wire_offset;  // where the suffix was emitted (< 0x3FFF)
  };

  std::vector<std::uint8_t> out_;
  std::vector<Suffix> suffixes_;
  std::vector<char> pool_;
  std::vector<char> scratch_;          // joined canonical name being written
  std::vector<std::uint32_t> starts_;  // per-label offsets into scratch_
};

/// Append-only writer into a WireArena. Big-endian primitives, 16-bit
/// back-patching for RDLENGTH fields, and RFC 1035 §4.1.4 name
/// compression: the longest previously emitted suffix is replaced by a
/// pointer. Compression state lives in the arena (no per-message maps).
class BufWriter {
 public:
  /// Begins a fresh message in `arena`, recycling its buffers.
  explicit BufWriter(WireArena& arena) : arena_(arena) {
    arena_.out_.clear();
    arena_.suffixes_.clear();
    arena_.pool_.clear();
  }

  void u8(std::uint8_t v) { arena_.out_.push_back(v); }
  void u16(std::uint16_t v) {
    arena_.out_.push_back(static_cast<std::uint8_t>(v >> 8));
    arena_.out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    arena_.out_.insert(arena_.out_.end(), data.begin(), data.end());
  }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    arena_.out_[offset] = static_cast<std::uint8_t>(v >> 8);
    arena_.out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  /// Writes `name` with compression against previously written names.
  void name(const DnsName& name);

  std::size_t size() const { return arena_.out_.size(); }
  std::span<const std::uint8_t> finish() const { return arena_.last(); }

 private:
  bool emit_pointer_for(std::string_view canonical_suffix);
  void remember_suffix(std::string_view canonical_suffix);

  WireArena& arena_;
};

/// Encodes into the arena without allocating (steady state). The returned
/// span borrows the arena and is invalidated by the next encode into it.
/// Byte-identical to dns::encode (which is a copying wrapper over this).
std::span<const std::uint8_t> encode_into(const DnsMessage& message,
                                          WireArena& arena);

/// A non-owning decoded DNS message. See the file comment for the
/// lifetime contract. Parsing runs the full validation pass; accessors
/// re-walk the validated bytes and cannot fail.
class MessageView {
 public:
  /// One question, viewed in place.
  struct QuestionView {
    NameView name;
    RecordType type = RecordType::kA;
    std::uint16_t qclass = kClassIn;
  };

  /// One resource record, viewed in place. `rdata` borrows the packet.
  struct RecordView {
    NameView name;
    RecordType type = RecordType::kA;
    std::uint16_t rclass = kClassIn;
    std::uint32_t ttl = 0;
    std::span<const std::uint8_t> rdata;

    /// Decodes A RDATA (when type/class/length say so).
    std::optional<net::Ipv4Addr> a_address() const;
    /// Concatenates TXT character-strings into `out` (allocates — the
    /// materializing path); returns false on malformed strings.
    bool txt_text(std::string* out) const;
    /// Zero-copy view of the first TXT character-string (empty optional
    /// when the RDATA is empty or the length octet overruns it). Binary
    /// single-segment TXT payloads — the netsvc result blobs — decode
    /// through this without touching the heap.
    std::optional<std::span<const std::uint8_t>> txt_segment() const;
  };

  enum class Section : std::uint8_t { kAnswer, kAuthority, kAdditional };

  /// Full validation pass, no allocation. Accepts exactly the packets
  /// dns::decode accepts; on rejection `error` (if given) receives the
  /// same diagnostic decode would produce.
  static std::optional<MessageView> parse(std::span<const std::uint8_t> wire,
                                          std::string* error = nullptr);

  const Header& header() const { return header_; }
  std::span<const std::uint8_t> wire() const { return wire_; }

  std::size_t question_count() const { return qd_; }
  /// First question (the only one DNS servers answer). Precondition:
  /// question_count() > 0.
  const QuestionView& first_question() const { return question_; }

  /// Visits every question in wire order.
  template <typename Fn>
  void for_each_question(Fn&& fn) const {
    PacketReader reader(wire_);
    reader.seek(questions_off_);
    for (std::size_t i = 0; i < qd_; ++i) {
      QuestionView q;
      std::uint16_t type = 0;
      if (!parse_name(reader, &q.name)) return;  // unreachable
      reader.u16(type);
      reader.u16(q.qclass);
      q.type = static_cast<RecordType>(type);
      fn(q);
    }
  }

  /// Record count per section, the OPT pseudo-record excluded (it is
  /// lifted into edns(), mirroring DnsMessage).
  std::size_t record_count(Section section) const;

  /// Visits the section's records in wire order, skipping OPT.
  template <typename Fn>
  void for_each_record(Section section, Fn&& fn) const {
    PacketReader reader(wire_);
    reader.seek(section_offset(section));
    const std::size_t declared = declared_count(section);
    for (std::size_t i = 0; i < declared; ++i) {
      RecordView record;
      bool is_opt = false;
      if (!read_record(reader, record, is_opt)) return;  // unreachable
      if (!is_opt) fn(record);
    }
  }

  /// EDNS state (OPT + ECS), decoded at parse.
  const std::optional<EdnsInfo>& edns() const { return edns_; }

  /// Deep copy into the owning form — exactly what dns::decode returns.
  DnsMessage materialize() const;

 private:
  std::size_t section_offset(Section section) const;
  std::size_t declared_count(Section section) const;
  bool read_record(PacketReader& reader, RecordView& record,
                   bool& is_opt) const;

  std::span<const std::uint8_t> wire_;
  Header header_;
  QuestionView question_;  // first question, when qd_ > 0
  std::uint16_t qd_ = 0, an_ = 0, ns_ = 0, ar_ = 0;  // declared counts
  std::uint16_t opt_counts_[3] = {0, 0, 0};  // OPTs per record section
  std::uint32_t questions_off_ = 0;
  std::uint32_t answers_off_ = 0;
  std::uint32_t authorities_off_ = 0;
  std::uint32_t additionals_off_ = 0;
  std::optional<EdnsInfo> edns_;
};

}  // namespace netclients::dns
