#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/message.h"

namespace netclients::dns {

/// Result of decoding: either a message or a diagnostic.
struct DecodeResult {
  bool ok = false;
  DnsMessage message;
  std::string error;

  static DecodeResult success(DnsMessage msg) {
    return {true, std::move(msg), {}};
  }
  static DecodeResult failure(std::string why) {
    return {false, {}, std::move(why)};
  }
};

/// Encodes a message to RFC 1035 wire format. Owner names in all sections
/// are compressed against previously written names; the OPT pseudo-record
/// (EDNS + ECS, RFC 6891/7871) is emitted in the additional section when
/// `edns` is set.
std::vector<std::uint8_t> encode(const DnsMessage& message);

/// Decodes wire format. Rejects truncated input, compression-pointer loops,
/// forward pointers, malformed ECS options, and oversize names. Unknown
/// RDATA is preserved as RawData.
DecodeResult decode(std::span<const std::uint8_t> wire);

}  // namespace netclients::dns
