#include "dns/packet.h"

#include <cassert>

#include "net/prefix.h"
#include "net/rng.h"

namespace netclients::dns {
namespace {

/// FNV-1a + finalizer over a label's packet bytes, lowercased on the fly —
/// bit-identical to net::stable_hash of the canonicalized label.
std::uint64_t lowercased_stable_hash(std::string_view raw_label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : raw_label) {
    h ^= static_cast<unsigned char>(canonical_lower(c));
    h *= 0x100000001b3ULL;
  }
  return net::mix64(h);
}

}  // namespace

// ----------------------------------------------------------------- NameView

std::string_view NameView::first_label() const {
  std::size_t cursor = offset_;
  int hops = 0;
  while (cursor < wire_.size()) {
    const std::uint8_t len = wire_[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= wire_.size() || ++hops > kMaxPointerHops) break;
      cursor =
          (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
      continue;
    }
    if (len == 0 || (len & 0xC0)) break;
    return {reinterpret_cast<const char*>(wire_.data()) + cursor + 1, len};
  }
  return {};  // unreachable for validated non-root names
}

std::uint64_t NameView::canonical_hash() const {
  std::uint64_t h = 0x5851f42d4c957f2dULL;
  for_each_label([&h](std::string_view label) {
    h = net::hash_combine(h, lowercased_stable_hash(label));
  });
  return h;
}

bool NameView::equals(const DnsName& name) const {
  if (name.label_count() != label_count_) return false;
  std::size_t i = 0;
  bool same = true;
  for_each_label([&](std::string_view raw) {
    const std::string& canonical = name.labels()[i++];
    if (raw.size() != canonical.size()) {
      same = false;
      return;
    }
    for (std::size_t b = 0; b < raw.size(); ++b) {
      if (canonical_lower(raw[b]) != canonical[b]) {
        same = false;
        return;
      }
    }
  });
  return same;
}

DnsName NameView::materialize() const {
  std::vector<std::string> labels;
  labels.reserve(label_count_);
  for_each_label([&labels](std::string_view label) {
    labels.emplace_back(label);
  });
  auto name = DnsName::from_labels(std::move(labels));
  assert(name.has_value());  // structural limits enforced at parse
  return std::move(*name);
}

bool parse_name(PacketReader& reader, NameView* out) {
  const std::span<const std::uint8_t> wire = reader.wire();
  std::size_t cursor = reader.pos();
  const std::size_t start = cursor;
  bool jumped = false;
  int hops = 0;
  std::size_t wire_len = 1;
  std::size_t labels = 0;
  while (true) {
    if (cursor >= wire.size()) return reader.fail("truncated name");
    const std::uint8_t len = wire[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= wire.size()) return reader.fail("truncated pointer");
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | wire[cursor + 1];
      if (!jumped) reader.seek(cursor + 2);
      if (target >= cursor) return reader.fail("forward compression pointer");
      if (++hops > NameView::kMaxPointerHops) {
        return reader.fail("compression pointer loop");
      }
      cursor = target;
      jumped = true;
      continue;
    }
    if (len & 0xC0) return reader.fail("reserved label type");
    if (len == 0) {
      if (!jumped) reader.seek(cursor + 1);
      break;
    }
    if (cursor + 1 + len > wire.size()) return reader.fail("truncated label");
    wire_len += 1 + len;
    if (wire_len > 255) return reader.fail("name too long");
    ++labels;
    cursor += 1 + len;
  }
  if (out != nullptr) {
    out->wire_ = wire;
    out->offset_ = static_cast<std::uint32_t>(start);
    out->label_count_ = static_cast<std::uint8_t>(labels);
    out->wire_length_ = static_cast<std::uint16_t>(wire_len);
  }
  return true;
}

// ---------------------------------------------------------------- BufWriter

bool BufWriter::emit_pointer_for(std::string_view canonical_suffix) {
  for (const WireArena::Suffix& suffix : arena_.suffixes_) {
    if (suffix.pool_length != canonical_suffix.size()) continue;
    std::string_view stored(arena_.pool_.data() + suffix.pool_offset,
                            suffix.pool_length);
    if (stored == canonical_suffix) {
      u16(static_cast<std::uint16_t>(0xC000 | suffix.wire_offset));
      return true;
    }
  }
  return false;
}

void BufWriter::remember_suffix(std::string_view canonical_suffix) {
  if (arena_.out_.size() >= 0x3FFF) return;  // unpointable from here on
  WireArena::Suffix suffix;
  suffix.pool_offset = static_cast<std::uint32_t>(arena_.pool_.size());
  suffix.pool_length = static_cast<std::uint16_t>(canonical_suffix.size());
  suffix.wire_offset = static_cast<std::uint16_t>(arena_.out_.size());
  arena_.pool_.insert(arena_.pool_.end(), canonical_suffix.begin(),
                      canonical_suffix.end());
  arena_.suffixes_.push_back(suffix);
}

void BufWriter::name(const DnsName& name) {
  const auto& labels = name.labels();
  // Lay the joined canonical form ("label.label.") out once so every
  // suffix is a view into it — the same keys the old per-message
  // std::map<std::string, offset> held, without the allocations.
  arena_.scratch_.clear();
  arena_.starts_.clear();
  for (const std::string& label : labels) {
    arena_.starts_.push_back(static_cast<std::uint32_t>(
        arena_.scratch_.size()));
    arena_.scratch_.insert(arena_.scratch_.end(), label.begin(), label.end());
    arena_.scratch_.push_back('.');
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::string_view suffix(arena_.scratch_.data() + arena_.starts_[i],
                            arena_.scratch_.size() - arena_.starts_[i]);
    if (emit_pointer_for(suffix)) return;
    remember_suffix(suffix);
    u8(static_cast<std::uint8_t>(labels[i].size()));
    bytes({reinterpret_cast<const std::uint8_t*>(labels[i].data()),
           labels[i].size()});
  }
  u8(0);  // root
}

// -------------------------------------------------------------- encode_into

namespace {

void encode_rdata(BufWriter& writer, const ResourceRecord& rr) {
  const std::size_t len_at = writer.size();
  writer.u16(0);  // placeholder
  const std::size_t start = writer.size();
  if (const auto* a = std::get_if<AData>(&rr.rdata)) {
    writer.u32(a->address.value());
  } else if (const auto* txt = std::get_if<TxtData>(&rr.rdata)) {
    // Split into 255-byte character-strings.
    std::string_view rest = txt->text;
    do {
      std::string_view chunk = rest.substr(0, 255);
      rest.remove_prefix(chunk.size());
      writer.u8(static_cast<std::uint8_t>(chunk.size()));
      writer.bytes({reinterpret_cast<const std::uint8_t*>(chunk.data()),
                    chunk.size()});
    } while (!rest.empty());
  } else {
    const auto& raw = std::get<RawData>(rr.rdata);
    writer.bytes(raw.bytes);
  }
  writer.patch_u16(len_at, static_cast<std::uint16_t>(writer.size() - start));
}

void encode_record(BufWriter& writer, const ResourceRecord& rr) {
  writer.name(rr.name);
  writer.u16(static_cast<std::uint16_t>(rr.type));
  writer.u16(rr.rclass);
  writer.u32(rr.ttl);
  encode_rdata(writer, rr);
}

void encode_opt(BufWriter& writer, const EdnsInfo& edns) {
  writer.u8(0);  // root owner name
  writer.u16(static_cast<std::uint16_t>(RecordType::kOpt));
  writer.u16(edns.udp_payload_size);  // CLASS = requestor's UDP payload size
  writer.u32(0);                      // extended RCODE/flags
  const std::size_t len_at = writer.size();
  writer.u16(0);
  const std::size_t start = writer.size();
  if (edns.ecs) {
    const EcsOption& ecs = *edns.ecs;
    const unsigned addr_bytes = (ecs.source_prefix_length + 7) / 8;
    writer.u16(EcsOption::kOptionCode);
    writer.u16(static_cast<std::uint16_t>(4 + addr_bytes));
    writer.u16(EcsOption::kFamilyIpv4);
    writer.u8(ecs.source_prefix_length);
    writer.u8(ecs.scope_prefix_length);
    const std::uint32_t addr = ecs.address.value();
    for (unsigned i = 0; i < addr_bytes; ++i) {
      writer.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
    }
  }
  writer.patch_u16(len_at, static_cast<std::uint16_t>(writer.size() - start));
}

}  // namespace

std::span<const std::uint8_t> encode_into(const DnsMessage& message,
                                          WireArena& arena) {
  BufWriter writer(arena);
  const Header& h = message.header;
  writer.u16(h.id);
  std::uint16_t flags = 0;
  flags |= static_cast<std::uint16_t>(h.qr) << 15;
  flags |= static_cast<std::uint16_t>(h.opcode & 0xF) << 11;
  flags |= static_cast<std::uint16_t>(h.aa) << 10;
  flags |= static_cast<std::uint16_t>(h.tc) << 9;
  flags |= static_cast<std::uint16_t>(h.rd) << 8;
  flags |= static_cast<std::uint16_t>(h.ra) << 7;
  flags |= static_cast<std::uint16_t>(h.rcode) & 0xF;
  writer.u16(flags);
  writer.u16(static_cast<std::uint16_t>(message.questions.size()));
  writer.u16(static_cast<std::uint16_t>(message.answers.size()));
  writer.u16(static_cast<std::uint16_t>(message.authorities.size()));
  writer.u16(static_cast<std::uint16_t>(message.additionals.size() +
                                        (message.edns ? 1 : 0)));
  for (const auto& q : message.questions) {
    writer.name(q.name);
    writer.u16(static_cast<std::uint16_t>(q.type));
    writer.u16(q.qclass);
  }
  for (const auto& rr : message.answers) encode_record(writer, rr);
  for (const auto& rr : message.authorities) encode_record(writer, rr);
  for (const auto& rr : message.additionals) encode_record(writer, rr);
  if (message.edns) encode_opt(writer, *message.edns);
  return writer.finish();
}

// -------------------------------------------------------------- MessageView

namespace {

bool parse_ecs(std::span<const std::uint8_t> data, EcsOption& out,
               PacketReader& reader) {
  if (data.size() < 4) return reader.fail("short ECS option");
  const std::uint16_t family =
      static_cast<std::uint16_t>(data[0] << 8 | data[1]);
  const std::uint8_t source_len = data[2];
  const std::uint8_t scope_len = data[3];
  if (family != EcsOption::kFamilyIpv4) return reader.fail("non-IPv4 ECS");
  if (source_len > 32 || scope_len > 32) {
    return reader.fail("ECS length > 32");
  }
  const unsigned addr_bytes = (source_len + 7) / 8;
  if (data.size() != 4 + addr_bytes) {
    return reader.fail("bad ECS address size");
  }
  std::uint32_t addr = 0;
  for (unsigned i = 0; i < addr_bytes; ++i) {
    addr |= std::uint32_t{data[4 + i]} << (24 - 8 * i);
  }
  out.address = net::Ipv4Addr(addr & net::Prefix::mask(source_len));
  out.source_prefix_length = source_len;
  out.scope_prefix_length = scope_len;
  return true;
}

/// Validates one record in full — the same accept/reject set as the
/// materializing decoder, including OPT/ECS structure and typed-RDATA
/// shape checks — and lifts EDNS state. Sets `is_opt` so callers can keep
/// per-section record counts that exclude the OPT pseudo-record.
bool validate_record(PacketReader& reader, std::optional<EdnsInfo>& edns,
                     bool& is_opt) {
  NameView name;
  if (!parse_name(reader, &name)) return false;
  std::uint16_t type = 0, rclass = 0, rdlength = 0;
  std::uint32_t ttl = 0;
  if (!reader.u16(type) || !reader.u16(rclass) || !reader.u32(ttl) ||
      !reader.u16(rdlength)) {
    return false;
  }
  std::span<const std::uint8_t> rdata;
  if (!reader.bytes(rdlength, rdata)) return false;

  const auto record_type = static_cast<RecordType>(type);
  is_opt = record_type == RecordType::kOpt;
  if (is_opt) {
    if (!name.is_root()) return reader.fail("OPT owner must be root");
    EdnsInfo info;
    info.udp_payload_size = rclass;
    std::size_t at = 0;
    while (at < rdata.size()) {
      if (at + 4 > rdata.size()) return reader.fail("truncated EDNS option");
      const std::uint16_t code =
          static_cast<std::uint16_t>(rdata[at] << 8 | rdata[at + 1]);
      const std::uint16_t optlen =
          static_cast<std::uint16_t>(rdata[at + 2] << 8 | rdata[at + 3]);
      at += 4;
      if (at + optlen > rdata.size()) {
        return reader.fail("truncated EDNS option");
      }
      if (code == EcsOption::kOptionCode) {
        EcsOption ecs;
        if (!parse_ecs(rdata.subspan(at, optlen), ecs, reader)) return false;
        info.ecs = ecs;
      }
      at += optlen;
    }
    edns = info;
    return true;
  }

  if (record_type == RecordType::kA && rclass == kClassIn) {
    if (rdata.size() != 4) return reader.fail("A rdata must be 4 bytes");
  } else if (record_type == RecordType::kTxt && rclass == kClassIn) {
    std::size_t at = 0;
    while (at < rdata.size()) {
      const std::uint8_t len = rdata[at++];
      if (at + len > rdata.size()) {
        return reader.fail("truncated TXT string");
      }
      at += len;
    }
  }
  return true;
}

}  // namespace

std::optional<net::Ipv4Addr> MessageView::RecordView::a_address() const {
  if (type != RecordType::kA || rclass != kClassIn || rdata.size() != 4) {
    return std::nullopt;
  }
  return net::Ipv4Addr((std::uint32_t{rdata[0]} << 24) |
                       (std::uint32_t{rdata[1]} << 16) |
                       (std::uint32_t{rdata[2]} << 8) |
                       std::uint32_t{rdata[3]});
}

std::optional<std::span<const std::uint8_t>>
MessageView::RecordView::txt_segment() const {
  if (rdata.empty()) return std::nullopt;
  const std::uint8_t len = rdata[0];
  if (std::size_t{len} + 1 > rdata.size()) return std::nullopt;
  return rdata.subspan(1, len);
}

bool MessageView::RecordView::txt_text(std::string* out) const {
  out->clear();
  std::size_t at = 0;
  while (at < rdata.size()) {
    const std::uint8_t len = rdata[at++];
    if (at + len > rdata.size()) return false;
    out->append(reinterpret_cast<const char*>(rdata.data() + at), len);
    at += len;
  }
  return true;
}

std::optional<MessageView> MessageView::parse(
    std::span<const std::uint8_t> wire, std::string* error) {
  MessageView view;
  view.wire_ = wire;
  PacketReader reader(wire);
  auto failure = [&]() -> std::optional<MessageView> {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  };

  std::uint16_t flags = 0;
  if (!reader.u16(view.header_.id) || !reader.u16(flags) ||
      !reader.u16(view.qd_) || !reader.u16(view.an_) ||
      !reader.u16(view.ns_) || !reader.u16(view.ar_)) {
    return failure();
  }
  view.header_.qr = flags & 0x8000;
  view.header_.opcode = (flags >> 11) & 0xF;
  view.header_.aa = flags & 0x0400;
  view.header_.tc = flags & 0x0200;
  view.header_.rd = flags & 0x0100;
  view.header_.ra = flags & 0x0080;
  view.header_.rcode = static_cast<RCode>(flags & 0xF);

  view.questions_off_ = static_cast<std::uint32_t>(reader.pos());
  for (std::size_t i = 0; i < view.qd_; ++i) {
    NameView name;
    std::uint16_t type = 0, qclass = 0;
    if (!parse_name(reader, &name) || !reader.u16(type) ||
        !reader.u16(qclass)) {
      return failure();
    }
    if (i == 0) {
      view.question_.name = name;
      view.question_.type = static_cast<RecordType>(type);
      view.question_.qclass = qclass;
    }
  }

  view.answers_off_ = static_cast<std::uint32_t>(reader.pos());
  const std::uint16_t declared[3] = {view.an_, view.ns_, view.ar_};
  std::uint32_t* offsets[3] = {nullptr, &view.authorities_off_,
                               &view.additionals_off_};
  for (int section = 0; section < 3; ++section) {
    if (offsets[section] != nullptr) {
      *offsets[section] = static_cast<std::uint32_t>(reader.pos());
    }
    for (std::size_t i = 0; i < declared[section]; ++i) {
      bool is_opt = false;
      if (!validate_record(reader, view.edns_, is_opt)) return failure();
      if (is_opt) ++view.opt_counts_[section];
    }
  }

  if (reader.remaining() != 0) {
    reader.fail("trailing bytes after message");
    return failure();
  }
  return view;
}

std::size_t MessageView::record_count(Section section) const {
  const auto index = static_cast<std::size_t>(section);
  const std::uint16_t declared[3] = {an_, ns_, ar_};
  return declared[index] - opt_counts_[index];
}

std::size_t MessageView::section_offset(Section section) const {
  switch (section) {
    case Section::kAnswer:
      return answers_off_;
    case Section::kAuthority:
      return authorities_off_;
    case Section::kAdditional:
      return additionals_off_;
  }
  return additionals_off_;
}

std::size_t MessageView::declared_count(Section section) const {
  switch (section) {
    case Section::kAnswer:
      return an_;
    case Section::kAuthority:
      return ns_;
    case Section::kAdditional:
      return ar_;
  }
  return ar_;
}

bool MessageView::read_record(PacketReader& reader, RecordView& record,
                              bool& is_opt) const {
  if (!parse_name(reader, &record.name)) return false;
  std::uint16_t type = 0, rdlength = 0;
  if (!reader.u16(type) || !reader.u16(record.rclass) ||
      !reader.u32(record.ttl) || !reader.u16(rdlength)) {
    return false;
  }
  record.type = static_cast<RecordType>(type);
  is_opt = record.type == RecordType::kOpt;
  return reader.bytes(rdlength, record.rdata);
}

DnsMessage MessageView::materialize() const {
  DnsMessage msg;
  msg.header = header_;
  PacketReader reader(wire_);
  reader.seek(questions_off_);
  msg.questions.reserve(qd_);
  for (std::size_t i = 0; i < qd_; ++i) {
    NameView name;
    Question q;
    std::uint16_t type = 0;
    parse_name(reader, &name);
    reader.u16(type);
    reader.u16(q.qclass);
    q.name = name.materialize();
    q.type = static_cast<RecordType>(type);
    msg.questions.push_back(std::move(q));
  }

  std::vector<ResourceRecord>* sections[3] = {&msg.answers, &msg.authorities,
                                              &msg.additionals};
  const std::uint16_t declared[3] = {an_, ns_, ar_};
  for (int section = 0; section < 3; ++section) {
    sections[section]->reserve(declared[section] - opt_counts_[section]);
    for (std::size_t i = 0; i < declared[section]; ++i) {
      RecordView record;
      bool is_opt = false;
      read_record(reader, record, is_opt);
      if (is_opt) continue;
      ResourceRecord rr;
      rr.name = record.name.materialize();
      rr.type = record.type;
      rr.rclass = record.rclass;
      rr.ttl = record.ttl;
      if (auto a = record.a_address()) {
        rr.rdata = AData{*a};
      } else if (record.type == RecordType::kTxt &&
                 record.rclass == kClassIn) {
        TxtData txt;
        record.txt_text(&txt.text);  // validated at parse; cannot fail
        rr.rdata = std::move(txt);
      } else {
        rr.rdata = RawData{{record.rdata.begin(), record.rdata.end()}};
      }
      sections[section]->push_back(std::move(rr));
    }
  }
  msg.edns = edns_;
  return msg;
}

}  // namespace netclients::dns
