#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netclients::dns {

/// The per-byte canonicalization applied to every label octet when a name
/// is materialized (ASCII lowercase; other bytes pass through). Exposed so
/// the zero-copy NameView can hash/compare raw packet bytes exactly as the
/// owning DnsName would after construction.
char canonical_lower(char c);

/// A DNS domain name: an ordered list of labels, stored lowercase (DNS name
/// comparison is case-insensitive; we canonicalize on construction).
///
/// The empty name is the root. Enforces RFC 1035 limits: labels of 1–63
/// octets, total wire length <= 255.
class DnsName {
 public:
  DnsName() = default;

  /// Parses presentation format ("www.example.com", trailing dot optional).
  /// Returns nullopt for empty labels, oversize labels/names, or characters
  /// outside [A-Za-z0-9_-] (liberal enough for Chromium probe labels and
  /// hostnames alike).
  static std::optional<DnsName> parse(std::string_view text);

  /// Builds from pre-validated labels (asserts limits in debug builds).
  static std::optional<DnsName> from_labels(std::vector<std::string> labels);

  const std::vector<std::string>& labels() const { return labels_; }
  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }

  /// True for single-label names ("sdhfjssf") — the shape of Chromium
  /// interception probes, which have no TLD.
  bool is_single_label() const { return labels_.size() == 1; }

  /// Length of this name on the wire without compression: one length octet
  /// per label plus the label bytes, plus the root terminator.
  std::size_t wire_length() const;

  /// Presentation format; the root name renders as ".".
  std::string to_string() const;

  /// Precomputed stable hash — names are immutable after construction, and
  /// the resolver hot paths hash the same name millions of times.
  std::uint64_t hash() const { return hash_; }

  friend bool operator==(const DnsName& a, const DnsName& b) {
    return a.hash_ == b.hash_ && a.labels_ == b.labels_;
  }
  friend auto operator<=>(const DnsName& a, const DnsName& b) {
    return a.labels_ <=> b.labels_;
  }

 private:
  std::vector<std::string> labels_;
  std::uint64_t hash_ = 0;
};

}  // namespace netclients::dns

template <>
struct std::hash<netclients::dns::DnsName> {
  std::size_t operator()(const netclients::dns::DnsName& name) const noexcept;
};
