// Tests for the geolocation database (MaxMind stand-in) and the ASdb
// categorization database.

#include <gtest/gtest.h>

#include "asdb/asdb.h"
#include "geo/geodb.h"
#include "net/rng.h"
#include "sim/world.h"

namespace netclients {
namespace {

TEST(GeoDatabase, AddAndLookup) {
  geo::GeoDatabase db;
  db.add(100, {{10, 20}, 50, 3});
  db.add(200, {{30, 40}, 25, 4});
  const auto rec = db.lookup(100);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->location.lat_deg, 10);
  EXPECT_EQ(rec->country, 3);
  EXPECT_FALSE(db.lookup(150).has_value());
  EXPECT_EQ(db.size(), 2u);
}

TEST(GeoDatabase, ForEachVisitsAllInOrder) {
  geo::GeoDatabase db;
  db.add(5, {});
  db.add(9, {});
  db.add(12, {});
  std::vector<std::uint32_t> seen;
  db.for_each([&](std::uint32_t idx, const geo::GeoRecord&) {
    seen.push_back(idx);
  });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{5, 9, 12}));
}

TEST(GeoDatabase, HighQualityObservationsAreMoreAccurate) {
  // The MaxMind error model [16]: eyeball networks geolocate well,
  // infrastructure poorly. Compare mean displacement at two qualities.
  net::Rng rng(11);
  const net::LatLon truth{48.0, 11.0};
  double err_high = 0, err_low = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    err_high += net::haversine_km(
        truth, geo::GeoDatabase::observe(truth, 0, 0.9, rng).location);
    err_low += net::haversine_km(
        truth, geo::GeoDatabase::observe(truth, 0, 0.3, rng).location);
  }
  EXPECT_LT(err_high / n * 2.5, err_low / n);
}

TEST(GeoDatabase, ErrorRadiusCorrelatesWithTrueError) {
  net::Rng rng(12);
  const net::LatLon truth{48.0, 11.0};
  // Records claiming a small radius should usually be close to the truth.
  double small_radius_err = 0, large_radius_err = 0;
  int small_count = 0, large_count = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto rec = geo::GeoDatabase::observe(truth, 0, 0.6, rng);
    const double err = net::haversine_km(truth, rec.location);
    if (rec.error_radius_km < 100) {
      small_radius_err += err;
      ++small_count;
    } else if (rec.error_radius_km > 400) {
      large_radius_err += err;
      ++large_count;
    }
  }
  ASSERT_GT(small_count, 50);
  ASSERT_GT(large_count, 50);
  EXPECT_LT(small_radius_err / small_count, large_radius_err / large_count);
}

TEST(Asdb, AddLookupAndMiss) {
  asdb::AsdbDatabase db;
  db.add(65001, asdb::AsCategory::kIsp);
  EXPECT_EQ(db.lookup(65001), asdb::AsCategory::kIsp);
  EXPECT_FALSE(db.lookup(65002).has_value());
}

TEST(Asdb, CategoryNames) {
  EXPECT_EQ(asdb::to_string(asdb::AsCategory::kIsp), "ISP");
  EXPECT_EQ(asdb::to_string(asdb::AsCategory::kHostingCloud),
            "Hosting/cloud");
  EXPECT_EQ(asdb::to_string(asdb::AsCategory::kEducation), "Education");
}

TEST(Asdb, WorldCoverageNearPaperRate) {
  sim::WorldConfig config;
  config.scale = 1.0 / 128;
  const sim::World world = sim::World::generate(config);
  std::size_t categorized = 0;
  for (const sim::AsEntry& as : world.ases()) {
    categorized += world.asdb().lookup(as.asn).has_value();
  }
  const double coverage =
      static_cast<double>(categorized) / world.ases().size();
  EXPECT_NEAR(coverage, 0.927, 0.03);  // ASdb categorizes 92.7% [38]
}

TEST(Asdb, WorldCategoriesMatchTypes) {
  sim::WorldConfig config;
  config.scale = 1.0 / 1024;
  const sim::World world = sim::World::generate(config);
  for (const sim::AsEntry& as : world.ases()) {
    const auto category = world.asdb().lookup(as.asn);
    if (!category) continue;
    if (as.type == sim::AsType::kIspEyeball) {
      EXPECT_EQ(*category, asdb::AsCategory::kIsp);
    } else if (as.type == sim::AsType::kEducation) {
      EXPECT_EQ(*category, asdb::AsCategory::kEducation);
    }
  }
}

TEST(GeoWorld, EveryAllocatedBlockHasGeoRecord) {
  sim::WorldConfig config;
  config.scale = 1.0 / 1024;
  const sim::World world = sim::World::generate(config);
  EXPECT_EQ(world.geodb().size(), world.blocks().size());
  for (std::size_t i = 0; i < world.blocks().size(); i += 37) {
    EXPECT_TRUE(world.geodb().lookup(world.blocks()[i].index).has_value());
  }
}

TEST(GeoWorld, EyeballBlocksGeolocateBetterThanInfra) {
  sim::WorldConfig config;
  config.scale = 1.0 / 256;
  const sim::World world = sim::World::generate(config);
  double eyeball_err = 0, infra_err = 0;
  int eyeball_n = 0, infra_n = 0;
  for (const sim::Slash24Block& block : world.blocks()) {
    const auto rec = world.geodb().lookup(block.index);
    if (!rec || block.as_index == sim::Slash24Block::kNoAs) continue;
    const double err = net::haversine_km(block.location, rec->location);
    const sim::AsType type = world.ases()[block.as_index].type;
    if (type == sim::AsType::kIspEyeball && block.users > 0) {
      eyeball_err += err;
      ++eyeball_n;
    } else if (type == sim::AsType::kHostingCloud) {
      infra_err += err;
      ++infra_n;
    }
  }
  ASSERT_GT(eyeball_n, 100);
  ASSERT_GT(infra_n, 100);
  EXPECT_LT(eyeball_err / eyeball_n, infra_err / infra_n);
}

}  // namespace
}  // namespace netclients
