// End-to-end integration tests: the full measurement study on a small
// world — both techniques, the validation datasets, and the paper's
// qualitative claims checked against ground truth. Also exercises the
// packet-level (wire format) path through the full stack.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <utility>

#include "apnic/apnic.h"
#include "cdn/cdn.h"
#include "core/cacheprobe/cacheprobe.h"
#include "core/chromium/chromium.h"
#include "core/compare/compare.h"
#include "core/datasets/datasets.h"
#include "dns/wire.h"
#include "roots/root_server.h"
#include "sim/activity.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients {
namespace {

struct Study {
  Study() {
    sim::WorldConfig config;
    config.scale = 1.0 / 512;
    world = sim::World::generate(config);
    activity = std::make_unique<sim::WorldActivityModel>(&world);
    gdns = std::make_unique<googledns::GooglePublicDns>(
        &world.pops(), &world.catchment(), &world.authoritative(),
        googledns::GoogleDnsConfig{}, activity.get());
    core::ProbeEnvironment probe_env;
    probe_env.authoritative = &world.authoritative();
    probe_env.google_dns = gdns.get();
    probe_env.geodb = &world.geodb();
    probe_env.vantage_points = anycast::default_vantage_fleet();
    probe_env.domains = world.domains();
    probe_env.slash24_begin = 1u << 16;
    probe_env.slash24_end = world.address_space_end();
    core::CacheProbeCampaign campaign(std::move(probe_env));
    probing = campaign.run().result;

    const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
    sim::DitlOptions ditl;
    ditl.sample_rate = 1.0 / 16;  // streaming-sampled, counts scaled back
    core::ChromiumOptions chromium_options;
    chromium_options.sample_rate = ditl.sample_rate;
    const core::ChromiumCounter counter(chromium_options);
    chromium = counter.process(
        [&](const std::function<void(const roots::TraceRecord&)>& emit) {
          sim::generate_ditl(world, roots, ditl, emit);
        });

    ms = cdn::observe_cdn(world, {});
    apnic_est = apnic::estimate_population(world, {});
  }

  sim::World world;
  std::unique_ptr<sim::WorldActivityModel> activity;
  std::unique_ptr<googledns::GooglePublicDns> gdns;
  core::CampaignResult probing;
  core::ChromiumResult chromium;
  cdn::CdnObservation ms;
  apnic::ApnicEstimate apnic_est;
};

const Study& study() {
  static const Study s;
  return s;
}

core::PrefixDataset clients_dataset() {
  core::PrefixDataset ds("Microsoft clients");
  for (const auto& [idx, volume] : study().ms.client_volume) {
    ds.add(idx, volume);
  }
  return ds;
}

TEST(EndToEnd, TechniquesDetectMostCdnVolume) {
  const auto clients = clients_dataset();
  const auto probing_ds = study().probing.to_prefix_dataset("cache probing");
  const auto logs_ds = study().chromium.to_prefix_dataset("DNS logs");
  const auto unified = core::PrefixDataset::union_of("union", probing_ds,
                                                     logs_ds);
  // Paper: 95.2% of CDN volume in detected prefixes. Accept the same
  // ballpark at small scale.
  EXPECT_GT(core::prefix_volume_share(clients, unified), 80.0);
}

TEST(EndToEnd, DnsLogsHasHighPrecision) {
  const auto clients = clients_dataset();
  const auto logs_ds = study().chromium.to_prefix_dataset("DNS logs");
  std::size_t in_clients = 0;
  for (const auto& [idx, count] : logs_ds.entries()) {
    in_clients += clients.contains(idx);
  }
  ASSERT_GT(logs_ds.size(), 20u);
  // Paper: 95.5% of DNS-logs prefixes are Microsoft-client prefixes.
  EXPECT_GT(static_cast<double>(in_clients) / logs_ds.size(), 0.85);
}

TEST(EndToEnd, CacheProbingUpperBoundIsGenerous) {
  // Paper: only 74.7% of upper-bound /24s are CDN client /24s — the bound
  // deliberately over-counts. Verify it over-counts but not absurdly.
  const auto clients = clients_dataset();
  const auto probing_ds = study().probing.to_prefix_dataset("cache probing");
  std::size_t in_clients = 0;
  for (const auto& [idx, v] : probing_ds.entries()) {
    in_clients += clients.contains(idx);
  }
  const double precision =
      static_cast<double>(in_clients) / probing_ds.size();
  EXPECT_GT(precision, 0.4);
  EXPECT_LT(precision, 0.95);
}

TEST(EndToEnd, UnionBeatsEitherTechniqueAtAsLevel) {
  const auto probing_as = core::to_as_dataset(
      "cache probing", study().probing.to_prefix_dataset("p"), study().world);
  const auto logs_as = core::to_as_dataset(
      "DNS logs", study().chromium.to_prefix_dataset("l"), study().world);
  const auto union_as =
      core::AsDataset::union_of("union", probing_as, logs_as);
  EXPECT_GT(union_as.size(), probing_as.size());
  EXPECT_GT(union_as.size(), logs_as.size());
}

TEST(EndToEnd, ApnicMissesAsesTheTechniquesFind) {
  const auto probing_as = core::to_as_dataset(
      "cache probing", study().probing.to_prefix_dataset("p"), study().world);
  std::size_t missed_by_apnic = 0;
  for (const auto& [asn, v] : probing_as.entries()) {
    missed_by_apnic += !study().apnic_est.users_by_as.contains(asn);
  }
  EXPECT_GT(missed_by_apnic, 0u)
      << "the paper found 29,973 such ASes at full scale";
}

TEST(EndToEnd, GroundTruthEcsRecoveredByMsCdnDomain) {
  // §4: cache probing recovers 91% of the ground-truth ECS prefixes of the
  // Microsoft-hosted domain (clients using Google Public DNS).
  int ms_domain = -1;
  for (std::size_t d = 0; d < study().world.domains().size(); ++d) {
    if (study().world.domains()[d].is_microsoft_cdn) {
      ms_domain = static_cast<int>(d);
    }
  }
  ASSERT_GE(ms_domain, 0);
  std::uint64_t recovered = 0;
  for (std::uint32_t idx : study().ms.ecs_prefixes) {
    recovered += study()
                     .probing.active_by_domain[static_cast<std::size_t>(
                         ms_domain)]
                     .intersects(net::Prefix::from_slash24_index(idx));
  }
  ASSERT_FALSE(study().ms.ecs_prefixes.empty());
  const double recall =
      static_cast<double>(recovered) / study().ms.ecs_prefixes.size();
  EXPECT_GT(recall, 0.6);  // paper: 0.91 at full scale
}

TEST(EndToEnd, ResolverCentricDatasetsAgree) {
  // DNS logs and Microsoft resolvers both observe recursive resolvers, so
  // their AS sets overlap far more than either does with APNIC (B.3).
  const auto logs_as = core::to_as_dataset(
      "DNS logs", study().chromium.to_prefix_dataset("l"), study().world);
  core::AsDataset resolvers_as("Microsoft resolvers");
  {
    core::PrefixDataset resolver_prefixes("r");
    for (const auto& [idx, clients] : study().ms.resolver_clients) {
      resolver_prefixes.add(idx, clients);
    }
    resolvers_as = core::to_as_dataset("Microsoft resolvers",
                                       resolver_prefixes, study().world);
  }
  std::size_t in_resolvers = 0, in_apnic = 0;
  for (const auto& [asn, v] : logs_as.entries()) {
    in_resolvers += resolvers_as.contains(asn);
    in_apnic += study().apnic_est.users_by_as.contains(asn);
  }
  EXPECT_GT(in_resolvers, in_apnic);
}

TEST(EndToEnd, WirePacketFlowThroughFullStack) {
  // A miniature packet-level run: a client populates the cache through the
  // recursive front end, a prober discovers its PoP via myaddr and snoops
  // it — all via encoded/decoded DNS messages.
  const sim::World& world = study().world;
  auto gdns = std::make_unique<googledns::GooglePublicDns>(
      &world.pops(), &world.catchment(), &world.authoritative());

  // Pick a real client block.
  const sim::Slash24Block* block = nullptr;
  for (const auto& b : world.blocks()) {
    if (b.users > 100) {
      block = &b;
      break;
    }
  }
  ASSERT_NE(block, nullptr);
  const net::Ipv4Addr client((block->index << 8) + 77);
  const auto& domain = world.domains()[0].name;

  // 1. Client resolves through Google Public DNS (RD=1).
  {
    auto query = dns::make_query(1, domain, dns::RecordType::kA, true,
                                 dns::EcsOption::for_query(
                                     net::Prefix::slash24_of(client)));
    const auto decoded = dns::decode(dns::encode(query));
    ASSERT_TRUE(decoded.ok);
    const auto response =
        gdns->handle(decoded.message, block->location, block->index, 100.0,
                     googledns::Transport::kUdp);
    ASSERT_EQ(response.answers.size(), 1u);
  }

  // 2. Prober finds the client's PoP with a myaddr query from the client's
  // own location (we cheat the VP location to guarantee the same PoP).
  const auto myaddr_query = dns::make_query(
      2, googledns::GooglePublicDns::myaddr_name(), dns::RecordType::kTxt,
      true);
  const auto myaddr = gdns->handle(myaddr_query, block->location,
                                   block->index, 101.0,
                                   googledns::Transport::kUdp);
  ASSERT_EQ(myaddr.answers.size(), 1u);

  // 3. RD=0 ECS snoop for the client's scope block hits.
  const auto scope = world.authoritative().scope_for(
      domain, net::Prefix::slash24_of(client), gdns->config().epoch);
  ASSERT_TRUE(scope.has_value());
  bool hit = false;
  for (std::uint16_t id = 0; id < 16 && !hit; ++id) {
    auto probe = dns::make_query(
        id, domain, dns::RecordType::kA, false,
        dns::EcsOption::for_query(
            net::Prefix::slash24_of(client).widen_to(*scope)));
    const auto decoded = dns::decode(dns::encode(probe));
    ASSERT_TRUE(decoded.ok);
    const auto response =
        gdns->handle(decoded.message, block->location, block->index, 102.0,
                     googledns::Transport::kTcp, 1);
    hit = !response.answers.empty();
  }
  EXPECT_TRUE(hit);
}

TEST(EndToEnd, RootServerWirePathCapturesChromiumProbe) {
  roots::RootSystem roots = roots::RootSystem::ditl_2020(3);
  auto& j_root = roots.root('j');
  const auto probe = dns::make_query(
      7, *dns::DnsName::parse("qxrwmzkpvt"), dns::RecordType::kA, false);
  const auto decoded = dns::decode(dns::encode(probe));
  ASSERT_TRUE(decoded.ok);
  const auto response = j_root.handle(decoded.message,
                                      *net::Ipv4Addr::parse("10.0.0.53"),
                                      12.0);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNxDomain);
  ASSERT_EQ(j_root.trace().size(), 1u);
  EXPECT_TRUE(core::matches_chromium_signature(j_root.trace()[0].qname));
}

}  // namespace
}  // namespace netclients
