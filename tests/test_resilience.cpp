// Tests for the resilience layer (retry/backoff policy, circuit breaker)
// and for fault injection end to end: a fault-free substrate must yield
// byte-identical campaigns whatever the retry policy, faulty runs must be
// byte-identical across thread counts, and recall must degrade
// monotonically with injected loss while retries claw part of it back.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/resilience/resilience.h"
#include "core/scenario/scenario.h"

namespace netclients::core {
namespace {

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  resilience::RetryPolicy policy;
  policy.jitter_fraction = 0;  // pure schedule
  policy.initial_backoff_seconds = 0.05;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.3;
  EXPECT_NEAR(policy.backoff_before(1, 1), 0.05, 1e-12);
  EXPECT_NEAR(policy.backoff_before(2, 1), 0.10, 1e-12);
  EXPECT_NEAR(policy.backoff_before(3, 1), 0.20, 1e-12);
  EXPECT_NEAR(policy.backoff_before(4, 1), 0.30, 1e-12);  // capped
  EXPECT_NEAR(policy.backoff_before(9, 1), 0.30, 1e-12);
}

TEST(RetryPolicy, JitterIsDeterministicPerKeyAndBounded) {
  resilience::RetryPolicy policy;  // jitter_fraction = 0.5
  bool varied = false;
  double first_value = -1;
  for (std::uint64_t key = 0; key < 64; ++key) {
    const double backoff = policy.backoff_before(1, key);
    EXPECT_EQ(backoff, policy.backoff_before(1, key));  // repeatable
    // backoff * (1 - f + f*u) with u in [0, 1).
    EXPECT_GE(backoff, policy.initial_backoff_seconds * 0.5 - 1e-12);
    EXPECT_LE(backoff, policy.initial_backoff_seconds + 1e-12);
    if (first_value < 0) first_value = backoff;
    varied |= backoff != first_value;
  }
  EXPECT_TRUE(varied);
}

TEST(RetryPolicy, TimeoutsArePerTransport) {
  resilience::RetryPolicy policy;
  policy.udp_timeout_seconds = 1.5;
  policy.tcp_timeout_seconds = 3.5;
  EXPECT_EQ(policy.timeout_for(googledns::Transport::kUdp), 1.5);
  EXPECT_EQ(policy.timeout_for(googledns::Transport::kTcp), 3.5);
}

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, OpensAfterThresholdThenRecloses) {
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 10.0;
  resilience::CircuitBreaker breaker(policy);
  EXPECT_EQ(breaker.state(0), resilience::CircuitBreaker::State::kClosed);
  breaker.record_failure(0);
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(0));  // still closed below the threshold
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(1.0), resilience::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(1.0));
  EXPECT_EQ(breaker.skipped(), 1u);
  EXPECT_EQ(breaker.opened(), 1u);
  // Open window elapsed: one trial probe is admitted (half-open)...
  EXPECT_EQ(breaker.state(10.0),
            resilience::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(10.0));
  // ...and its success recloses the breaker.
  breaker.record_success();
  EXPECT_EQ(breaker.state(10.1), resilience::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(10.1));
}

TEST(CircuitBreaker, FailedTrialReopensFreshWindow) {
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.open_seconds = 5.0;
  resilience::CircuitBreaker breaker(policy);
  breaker.record_failure(0);
  breaker.record_failure(0);
  EXPECT_FALSE(breaker.allow(1.0));
  EXPECT_TRUE(breaker.allow(5.0));   // trial
  breaker.record_failure(5.0);       // trial failed: re-open from now
  EXPECT_FALSE(breaker.allow(9.0));  // inside the fresh window
  EXPECT_TRUE(breaker.allow(10.0));
  EXPECT_EQ(breaker.opened(), 2u);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount) {
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 3;
  resilience::CircuitBreaker breaker(policy);
  for (int round = 0; round < 10; ++round) {
    breaker.record_failure(0);
    breaker.record_failure(0);
    breaker.record_success();  // never three in a row
  }
  EXPECT_EQ(breaker.state(0), resilience::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opened(), 0u);
}

TEST(CircuitBreaker, DisabledThresholdNeverOpens) {
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 0;  // disabled
  resilience::CircuitBreaker breaker(policy);
  for (int i = 0; i < 100; ++i) breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_EQ(breaker.opened(), 0u);
}

TEST(RetryStats, MergeSumsFieldwise) {
  resilience::RetryStats a, b;
  a.retries = 2;
  a.timeouts = 1;
  a.requeued = 4;
  b.retries = 3;
  b.servfails = 5;
  b.breaker_opened = 1;
  a.merge(b);
  EXPECT_EQ(a.retries, 5u);
  EXPECT_EQ(a.timeouts, 1u);
  EXPECT_EQ(a.servfails, 5u);
  EXPECT_EQ(a.requeued, 4u);
  EXPECT_EQ(a.breaker_opened, 1u);
}

TEST(RetryStats, MergeShardsIsOrderIndependent) {
  // The campaign's cross-shard merge is a commutative integer sum: any
  // permutation (and any regrouping into fewer or more shards) lands on the
  // same totals, which is what makes retry_stats independent of thread and
  // shard count.
  resilience::RetryStats a, b, c;
  a.retries = 2;
  a.waited_ms = 120;
  b.timeouts = 7;
  b.escalations = 1;
  c.servfails = 3;
  c.breaker_skipped = 9;
  const auto forward = resilience::RetryStats::merge_shards({a, b, c});
  const auto backward = resilience::RetryStats::merge_shards({c, b, a});
  EXPECT_EQ(forward, backward);
  // Regrouped: {a+b} then {c} — the same totals as three singleton shards.
  resilience::RetryStats ab = a;
  ab.merge(b);
  EXPECT_EQ(resilience::RetryStats::merge_shards({ab, c}), forward);
  EXPECT_EQ(resilience::RetryStats::merge_shards({}), resilience::RetryStats{});
}

// ----------------------------------------------------- campaign integration

constexpr double kScale = 4096;

std::string fingerprint(const CampaignResult& result) {
  std::ostringstream out;
  out << result.probes_sent << '|' << result.rate_limited << '|'
      << result.slash24_lower_bound() << '|'
      << result.slash24_upper_bound() << '\n';
  for (const CacheHit& hit : result.hits) {
    out << hit.domain_index << ',' << hit.query_scope.base().value() << '/'
        << static_cast<int>(hit.query_scope.length()) << ','
        << static_cast<int>(hit.return_scope) << ',' << hit.pop << ','
        << hit.when << '\n';
  }
  return out.str();
}

CampaignResult run_campaign(const googledns::FailureInjection& faults,
                            int retry_attempts, int threads) {
  googledns::GoogleDnsConfig config;
  config.faults = faults;
  CacheProbeOptions options;
  options.max_loops = 2;
  options.probe.retry.max_attempts = retry_attempts;
  const Scenario scenario = ScenarioBuilder()
                                .scale_denominator(kScale)
                                .google_config(config)
                                .probe_options(options)
                                .threads(threads)
                                .build();
  return scenario.campaign().run().result;
}

TEST(FaultFreeRuns, RetryPolicyCannotPerturbResults) {
  // With zero fault rates no retry path ever triggers, so wildly different
  // retry/breaker budgets must yield byte-identical campaigns.
  const auto baseline = run_campaign({}, 3, 0);
  const auto cranked = [] {
    googledns::GoogleDnsConfig config;  // no faults
    CacheProbeOptions options;
    options.max_loops = 2;
    options.probe.retry.max_attempts = 9;
    options.probe.retry.initial_backoff_seconds = 1.0;
    options.probe.retry.udp_timeout_seconds = 0.25;
    options.probe.retry.tcp_timeout_seconds = 0.25;
    options.probe.breaker.failure_threshold = 1;
    const Scenario scenario = ScenarioBuilder()
                                  .scale_denominator(kScale)
                                  .google_config(config)
                                  .probe_options(options)
                                  .build();
    return scenario.campaign().run().result;
  }();
  EXPECT_EQ(fingerprint(baseline), fingerprint(cranked));
  EXPECT_EQ(baseline.retry_stats.retries, 0u);
  EXPECT_EQ(cranked.retry_stats.retries, 0u);
  EXPECT_EQ(cranked.retry_stats.breaker_opened, 0u);
}

TEST(FaultyRuns, ByteIdenticalAcrossThreadCounts) {
  googledns::FailureInjection faults;
  faults.timeout_probability = 0.3;
  faults.servfail_probability = 0.1;
  const auto serial = run_campaign(faults, 3, 1);
  const auto parallel = run_campaign(faults, 3, 8);
  EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
  // The retry tally must be fully shard-count independent, not just in the
  // headline fields — merge_shards is a commutative sum.
  EXPECT_EQ(serial.retry_stats, parallel.retry_stats);
  EXPECT_GT(serial.retry_stats.retries, 0u);
}

TEST(FaultyRuns, RecallDegradesMonotonicallyWithLoss) {
  auto hits_at = [](double loss) {
    googledns::FailureInjection faults;
    faults.timeout_probability = loss;
    return run_campaign(faults, 3, 0).hits.size();
  };
  const auto clean = hits_at(0.0);
  const auto lossy = hits_at(0.4);
  const auto drowning = hits_at(0.8);
  EXPECT_GE(clean, lossy);
  EXPECT_GE(lossy, drowning);
  EXPECT_GT(clean, drowning);  // strict across the full sweep
}

TEST(FaultyRuns, RetriesRecoverPartOfTheLoss) {
  googledns::FailureInjection faults;
  faults.timeout_probability = 0.5;
  const auto no_retries = run_campaign(faults, 1, 0);
  const auto with_retries = run_campaign(faults, 3, 0);
  EXPECT_GE(with_retries.hits.size(), no_retries.hits.size());
  EXPECT_GT(with_retries.hits.size(), 0u);
  EXPECT_EQ(no_retries.retry_stats.retries, 0u);
  EXPECT_GT(with_retries.retry_stats.retries, 0u);
  // The retry budget must actually close part of the recall gap left by
  // single-shot probing under 50% probe loss.
  const auto clean = run_campaign({}, 1, 0);
  EXPECT_GT(clean.hits.size(), no_retries.hits.size());
}

TEST(FaultyRuns, SurgeWindowRefusalsAreCountedNotRetried) {
  googledns::FailureInjection faults;
  faults.surge_refusal_probability = 0.9;
  faults.surge_windows.push_back({0.0, 1e9});  // always surging
  const auto result = run_campaign(faults, 3, 0);
  EXPECT_GT(result.rate_limited, 0u);
  // Rate-limit refusals are normal operation, not hard failures: no
  // retries, no breaker trips.
  EXPECT_EQ(result.retry_stats.retries, 0u);
  EXPECT_EQ(result.retry_stats.breaker_opened, 0u);
}

}  // namespace
}  // namespace netclients::core
