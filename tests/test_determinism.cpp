// Determinism suite for the parallel execution layer (labels:
// determinism, tsan): same seed ⇒ byte-identical results regardless of
// thread count, for every sharded stage — scope discovery, calibration,
// the probing campaign, and the Chromium DITL scan. Also covers the exec
// primitives themselves and the mean_assigned_per_pop truncation fix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "anycast/vantage.h"
#include "core/cacheprobe/cacheprobe.h"
#include "core/chromium/chromium.h"
#include "core/exec/exec.h"
#include "core/obs/export.h"
#include "core/obs/obs.h"
#include "roots/root_server.h"
#include "sim/activity.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

// ------------------------------------------------------------- exec basics

TEST(Exec, ParallelMapReturnsResultsInIndexOrder) {
  const auto results =
      exec::parallel_map(257, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(Exec, SerialAndParallelMapAgree) {
  const auto serial =
      exec::parallel_map(100, 1, [](std::size_t i) { return 31 * i + 7; });
  const auto parallel =
      exec::parallel_map(100, 8, [](std::size_t i) { return 31 * i + 7; });
  EXPECT_EQ(serial, parallel);
}

TEST(Exec, ChunkPartitionDependsOnlyOnInputs) {
  // Chunk boundaries must be a pure function of (begin, end, chunk_size):
  // identical for any thread count.
  const auto cut = [](int threads) {
    return exec::parallel_for_chunks(
        100, 1000, 64, threads, [](exec::ChunkRange r) {
          return std::make_pair(r.begin, r.end);
        });
  };
  const auto one = cut(1);
  const auto eight = cut(8);
  ASSERT_EQ(one, eight);
  std::size_t covered = 100;
  for (const auto& [begin, end] : one) {
    EXPECT_EQ(begin, covered);
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, 1000u);
}

TEST(Exec, ShardSeedIsStableAndPerShard) {
  // The per-shard stream is keyed by the logical shard id, so it is the
  // same value on every call — and distinct across shards and seeds.
  EXPECT_EQ(exec::shard_seed(0xCAFE, 3), exec::shard_seed(0xCAFE, 3));
  EXPECT_NE(exec::shard_seed(0xCAFE, 3), exec::shard_seed(0xCAFE, 4));
  EXPECT_NE(exec::shard_seed(0xCAFE, 3), exec::shard_seed(0xBEEF, 3));
  net::Rng a = exec::shard_rng(0xCAFE, 5);
  net::Rng b = exec::shard_rng(0xCAFE, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Exec, ThreadCountReadsReproThreadsEnv) {
  ::setenv("REPRO_THREADS", "3", 1);
  EXPECT_EQ(exec::thread_count(), 3);
  ::setenv("REPRO_THREADS", "0", 1);  // clamped to >= 1
  EXPECT_EQ(exec::thread_count(), 1);
  ::unsetenv("REPRO_THREADS");
  EXPECT_GE(exec::thread_count(), 1);
}

TEST(Exec, ParallelMapPropagatesExceptions) {
  EXPECT_THROW(exec::parallel_map(64, 8,
                                  [](std::size_t i) {
                                    if (i == 13) {
                                      throw std::runtime_error("boom");
                                    }
                                    return i;
                                  }),
               std::runtime_error);
}

// --------------------------------------------- truncation-bugfix regression

TEST(MeanAssigned, ComputedInDoubleNotInteger) {
  // 7 candidates over 2 PoPs x 2 domains is 1.75 — the old integer
  // division reported 1.
  EXPECT_DOUBLE_EQ(mean_assigned_per_pop(7, 2, 2), 1.75);
  EXPECT_DOUBLE_EQ(mean_assigned_per_pop(0, 5, 3), 0.0);
  EXPECT_DOUBLE_EQ(mean_assigned_per_pop(10, 0, 2), 0.0);  // no PoPs: defined
}

// ------------------------------------------------- campaign thread-count
// One full probing pipeline per (seed, threads); the substrate (world +
// Google front end) is rebuilt fresh each run because probing itself warms
// the caches being measured.

struct RunArtifacts {
  std::vector<std::string> scopes;        // stage-1 candidates, domain 0
  std::vector<std::string> hits;          // every CacheHit field, in order
  std::vector<net::SimTime> hit_times;    // compared bit-exactly, not via
                                          // to_string's rounding
  std::unordered_map<anycast::PopId, double> radii;
  std::unordered_map<anycast::PopId, std::vector<double>> hit_distances;
  std::uint64_t probes_sent = 0;
  std::uint64_t rate_limited = 0;
  double average_assigned_per_pop = 0;
  std::uint64_t lower = 0, upper = 0;
};

RunArtifacts run_pipeline(
    std::uint64_t seed, int threads,
    googledns::UpstreamMode mode = googledns::UpstreamMode::kWire) {
  sim::WorldConfig config;
  config.scale = 1.0 / 2048;
  sim::World world = sim::World::generate(config);
  sim::WorldActivityModel activity(&world);
  googledns::GoogleDnsConfig gconfig;
  gconfig.upstream_mode = mode;
  googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                  &world.authoritative(), gconfig,
                                  &activity);
  ProbeEnvironment env;
  env.authoritative = &world.authoritative();
  env.google_dns = &gdns;
  env.geodb = &world.geodb();
  env.vantage_points = anycast::default_vantage_fleet();
  env.domains = world.domains();
  env.slash24_begin = 1u << 16;
  env.slash24_end = world.address_space_end();
  CacheProbeOptions options;
  options.seed = seed;
  options.threads = threads;
  options.max_loops = 2;

  RunArtifacts out;
  for (const ProbeCandidate& c : discover_scopes(env, options, 0)) {
    out.scopes.push_back(c.scope.to_string());
  }
  const auto pops = discover_pops(env);
  const auto calibration = calibrate(env, options, pops);
  out.radii = calibration.service_radius_km;
  out.hit_distances = calibration.hit_distances_km;
  const auto result = run_campaign(env, options, pops, calibration);
  for (const CacheHit& hit : result.hits) {
    out.hits.push_back(std::to_string(hit.domain_index) + " " +
                       hit.query_scope.to_string() + " " +
                       std::to_string(hit.return_scope) + " " +
                       std::to_string(hit.pop));
    out.hit_times.push_back(hit.when);
  }
  out.probes_sent = result.probes_sent;
  out.rate_limited = result.rate_limited;
  out.average_assigned_per_pop = result.average_assigned_per_pop;
  out.lower = result.slash24_lower_bound();
  out.upper = result.slash24_upper_bound();
  return out;
}

void expect_identical(const RunArtifacts& serial, const RunArtifacts& mt) {
  EXPECT_EQ(serial.scopes, mt.scopes);
  EXPECT_EQ(serial.hits, mt.hits);  // byte-identical hit stream
  EXPECT_EQ(serial.hit_times, mt.hit_times);
  EXPECT_EQ(serial.radii, mt.radii);
  EXPECT_EQ(serial.hit_distances, mt.hit_distances);
  EXPECT_EQ(serial.probes_sent, mt.probes_sent);
  EXPECT_EQ(serial.rate_limited, mt.rate_limited);
  EXPECT_DOUBLE_EQ(serial.average_assigned_per_pop,
                   mt.average_assigned_per_pop);
  EXPECT_EQ(serial.lower, mt.lower);
  EXPECT_EQ(serial.upper, mt.upper);
}

TEST(Determinism, CampaignIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {0xCAFEull, 0xBEEFull}) {
    const RunArtifacts serial = run_pipeline(seed, 1);
    const RunArtifacts mt = run_pipeline(seed, 8);
    ASSERT_FALSE(serial.hits.empty());
    expect_identical(serial, mt);
  }
}

TEST(Determinism, CampaignRespectsReproThreadsEnv) {
  // threads = 0 defers to REPRO_THREADS; 1 and 5 must agree.
  ::setenv("REPRO_THREADS", "1", 1);
  const RunArtifacts serial = run_pipeline(0xCAFE, 0);
  ::setenv("REPRO_THREADS", "5", 1);
  const RunArtifacts mt = run_pipeline(0xCAFE, 0);
  ::unsetenv("REPRO_THREADS");
  ASSERT_FALSE(serial.hits.empty());
  expect_identical(serial, mt);
}

TEST(Determinism, CampaignIdenticalAcrossUpstreamModes) {
  // The packet-plane gate: the resolver talking RFC 1035 wire bytes to
  // the authoritative upstream must not change a single campaign artifact
  // relative to structured-message mode, serial or parallel.
  for (const int threads : {1, 8}) {
    const RunArtifacts wire =
        run_pipeline(0xCAFE, threads, googledns::UpstreamMode::kWire);
    const RunArtifacts structured =
        run_pipeline(0xCAFE, threads, googledns::UpstreamMode::kStructured);
    ASSERT_FALSE(wire.hits.empty());
    expect_identical(wire, structured);
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  // The seed must actually steer the pipeline (otherwise the cross-seed
  // assertions above prove nothing). It drives the calibration sample, so
  // the raw hit-distance series must differ between seeds.
  const RunArtifacts a = run_pipeline(0xCAFE, 8);
  const RunArtifacts b = run_pipeline(0xBEEF, 8);
  EXPECT_NE(a.hit_distances, b.hit_distances);
}

// ------------------------------------------------- metrics thread-count

TEST(Determinism, MetricsJsonIdenticalAcrossThreadCounts) {
  // The observability layer follows the same discipline as the pipelines:
  // for a fixed seed, the exported metrics JSON (timings excluded — span
  // wall-clock is the one intentionally nondeterministic field) is
  // byte-identical between a serial and an 8-way run. The Chromium scan is
  // included via its streaming replay path on purpose: its ChunkedScatter
  // flushes in thread-count-sized batches, so any metric keyed to fan-out
  // *calls* (rather than shards) would diverge here.
  sim::WorldConfig config;
  config.scale = 1.0 / 2048;
  const sim::World world = sim::World::generate(config);
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / 16;
  std::vector<roots::TraceRecord> trace;
  sim::generate_ditl(world, roots, ditl,
                     [&](const roots::TraceRecord& r) { trace.push_back(r); });
  ASSERT_FALSE(trace.empty());

  const auto metrics_json_for = [&](int threads) {
    obs::Registry::global().reset();
    run_pipeline(0xCAFE, threads);
    ChromiumOptions chromium;
    chromium.sample_rate = ditl.sample_rate;
    chromium.chunk_records = 1 << 10;
    chromium.threads = threads;
    ChromiumCounter(chromium).process(
        [&](const std::function<void(const roots::TraceRecord&)>& emit) {
          for (const roots::TraceRecord& r : trace) emit(r);
        });
    obs::ExportOptions options;
    options.include_timings = false;
    return obs::to_json(obs::Registry::global().snapshot(), options);
  };
  const std::string serial = metrics_json_for(1);
  const std::string parallel = metrics_json_for(8);
  EXPECT_EQ(serial, parallel);
  // The export actually covers the instrumented subsystems.
  for (const char* metric :
       {"googledns.probe.sent", "dnssrv.ratelimiter.allowed",
        "cacheprobe.campaign.probes_sent",
        "cacheprobe.calibration.hit_distance_km", "cacheprobe.run_campaign",
        "chromium.records_scanned"}) {
    EXPECT_NE(serial.find(metric), std::string::npos) << metric;
  }
}

// --------------------------------------------------- chromium thread-count

TEST(Determinism, ChromiumCountsIdenticalAcrossThreadCounts) {
  sim::WorldConfig config;
  config.scale = 1.0 / 2048;
  const sim::World world = sim::World::generate(config);
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
  sim::DitlOptions ditl;
  ditl.sample_rate = 1.0 / 16;
  std::vector<roots::TraceRecord> trace;
  sim::generate_ditl(world, roots, ditl,
                     [&](const roots::TraceRecord& r) { trace.push_back(r); });
  ASSERT_FALSE(trace.empty());

  ChromiumOptions options;
  options.sample_rate = ditl.sample_rate;
  options.chunk_records = 1 << 10;  // many chunks even on this small trace
  auto run = [&](int threads) {
    ChromiumOptions o = options;
    o.threads = threads;
    return ChromiumCounter(o).process(trace);
  };
  const ChromiumResult serial = run(1);
  const ChromiumResult mt = run(8);
  ASSERT_FALSE(serial.probes_by_resolver.empty());
  EXPECT_EQ(serial.records_scanned, mt.records_scanned);
  EXPECT_EQ(serial.signature_matches, mt.signature_matches);
  EXPECT_EQ(serial.rejected_collisions, mt.rejected_collisions);
  EXPECT_EQ(serial.probes_by_resolver, mt.probes_by_resolver);
}

}  // namespace
}  // namespace netclients::core
