// Tests for the resolver-side substrate: ECS-aware authoritative server
// (scope consistency, drift, wire handling), the TTL+LRU cache, and the
// token-bucket rate limiter.

#include <gtest/gtest.h>

#include "dns/packet.h"
#include "dns/wire.h"
#include "dnssrv/authoritative.h"
#include "dnssrv/cache.h"
#include "dnssrv/rate_limiter.h"
#include "net/rng.h"

namespace netclients::dnssrv {
namespace {

ZoneConfig test_zone(std::uint8_t min_scope = 16, std::uint8_t max_scope = 24,
                     double drift = 0.0, std::uint64_t seed = 7) {
  ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  zone.ttl_seconds = 300;
  zone.min_scope = min_scope;
  zone.max_scope = max_scope;
  zone.scope_drift_probability = drift;
  zone.seed = seed;
  return zone;
}

// ------------------------------------------------------------ authoritative

TEST(Authoritative, ServesOnlyConfiguredZones) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  EXPECT_TRUE(server.serves(*dns::DnsName::parse("www.example.com")));
  EXPECT_FALSE(server.serves(*dns::DnsName::parse("other.example.com")));
  EXPECT_FALSE(server
                   .resolve(*dns::DnsName::parse("other.example.com"),
                            *net::Prefix::parse("1.2.3.0/24"))
                   .has_value());
}

TEST(Authoritative, ZoneLookupByNameViewAvoidsMaterializing) {
  // The transparent map lookup: a NameView straight off a packet finds the
  // zone (case-insensitively) without building a DnsName.
  AuthoritativeServer server;
  server.add_zone(test_zone());
  const auto query =
      dns::make_query(1, *dns::DnsName::parse("WWW.Example.COM"),
                      dns::RecordType::kA, false);
  const auto wire = dns::encode(query);
  const auto view = dns::MessageView::parse(wire);
  ASSERT_TRUE(view.has_value());
  const ZoneConfig* zone = server.zone(view->first_question().name);
  ASSERT_NE(zone, nullptr);
  EXPECT_EQ(zone->name, *dns::DnsName::parse("www.example.com"));
  // Unknown names miss through the same transparent path.
  const auto other =
      dns::encode(dns::make_query(2, *dns::DnsName::parse("nope.example"),
                                  dns::RecordType::kA, false));
  const auto other_view = dns::MessageView::parse(other);
  ASSERT_TRUE(other_view.has_value());
  EXPECT_EQ(server.zone(other_view->first_question().name), nullptr);
}

TEST(Authoritative, HandleWireByteIdenticalToStructuredPath) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  dns::WireArena arena;
  net::Rng rng(0xD11);
  for (int i = 0; i < 200; ++i) {
    const auto qname = rng.bernoulli(0.7)
                           ? *dns::DnsName::parse("www.example.com")
                           : *dns::DnsName::parse("unknown.example");
    std::optional<dns::EcsOption> ecs;
    if (rng.bernoulli(0.8)) {
      ecs = dns::EcsOption::for_query(
          net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                      static_cast<std::uint8_t>(rng.below(25))));
    }
    const auto query = dns::make_query(static_cast<std::uint16_t>(rng()),
                                       qname, dns::RecordType::kA,
                                       rng.bernoulli(0.5), ecs);
    const auto query_wire = dns::encode(query);
    const std::uint32_t epoch = static_cast<std::uint32_t>(rng.below(3));
    // Structured reference: decode, handle, encode.
    const auto decoded = dns::decode(query_wire);
    ASSERT_TRUE(decoded.ok);
    const auto expected = dns::encode(server.handle(decoded.message, epoch));
    // Wire path: straight through the packet plane.
    const auto got = server.handle_wire(query_wire, epoch, arena);
    EXPECT_EQ(expected, std::vector<std::uint8_t>(got.begin(), got.end()));
  }
}

TEST(Authoritative, HandleWireDropsUnparseableQueries) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  dns::WireArena arena;
  const std::vector<std::uint8_t> garbage = {0xFF, 0x00, 0x01};
  EXPECT_TRUE(server.handle_wire(garbage, 0, arena).empty());
}

TEST(Authoritative, ScopeWithinConfiguredBounds) {
  AuthoritativeServer server;
  server.add_zone(test_zone(18, 22));
  net::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const net::Prefix p(net::Ipv4Addr(static_cast<std::uint32_t>(rng())), 24);
    const auto scope =
        server.scope_for(*dns::DnsName::parse("www.example.com"), p);
    ASSERT_TRUE(scope.has_value());
    EXPECT_GE(*scope, 18);
    EXPECT_LE(*scope, 22);
  }
}

TEST(Authoritative, NonEcsZoneReturnsScopeZero) {
  AuthoritativeServer server;
  ZoneConfig zone = test_zone();
  zone.supports_ecs = false;
  server.add_zone(zone);
  EXPECT_EQ(*server.scope_for(zone.name, *net::Prefix::parse("1.2.3.0/24")),
            0);
}

// The property the probe-reduction preprocessing relies on (§3.1.1): every
// /24 inside a returned scope block is assigned exactly that scope.
class ScopeConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScopeConsistency, AllSlash24sInBlockShareScope) {
  AuthoritativeServer server;
  server.add_zone(test_zone(16, 24, 0.0, GetParam()));
  const auto name = *dns::DnsName::parse("www.example.com");
  net::Rng rng(GetParam() ^ 0x55);
  for (int i = 0; i < 50; ++i) {
    const net::Prefix probe(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                            24);
    const std::uint8_t scope = *server.scope_for(name, probe);
    const net::Prefix block = probe.widen_to(scope);
    // Sample /24s within the block; all must agree.
    for (int j = 0; j < 16; ++j) {
      const std::uint32_t offset = static_cast<std::uint32_t>(
          rng.below(block.slash24_count()));
      const net::Prefix inner = net::Prefix::from_slash24_index(
          block.first_slash24_index() + offset);
      EXPECT_EQ(*server.scope_for(name, inner), scope)
          << block.to_string() << " inner " << inner.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopeConsistency,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Authoritative, ScopeStableWithoutDrift) {
  AuthoritativeServer server;
  server.add_zone(test_zone(16, 24, 0.0));
  const auto name = *dns::DnsName::parse("www.example.com");
  const net::Prefix p = *net::Prefix::parse("100.64.5.0/24");
  EXPECT_EQ(*server.scope_for(name, p, 0), *server.scope_for(name, p, 1));
  EXPECT_EQ(*server.scope_for(name, p, 1), *server.scope_for(name, p, 7));
}

TEST(Authoritative, DriftChangesSomeScopesBetweenEpochs) {
  AuthoritativeServer server;
  server.add_zone(test_zone(16, 24, 0.15));
  const auto name = *dns::DnsName::parse("www.example.com");
  net::Rng rng(3);
  int changed = 0;
  const int total = 2000;
  for (int i = 0; i < total; ++i) {
    const net::Prefix p(net::Ipv4Addr(static_cast<std::uint32_t>(rng())), 24);
    if (*server.scope_for(name, p, 0) != *server.scope_for(name, p, 1)) {
      ++changed;
    }
  }
  // Drift is applied per scope-block, so the per-/24 rate is in the same
  // ballpark as the configured probability.
  EXPECT_GT(changed, total * 0.05);
  EXPECT_LT(changed, total * 0.35);
}

TEST(Authoritative, ResolveReturnsConsistentAnswerPerScopeBlock) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  const auto name = *dns::DnsName::parse("www.example.com");
  const net::Prefix p = *net::Prefix::parse("100.64.5.0/24");
  const auto a = server.resolve(name, p);
  ASSERT_TRUE(a.has_value());
  const net::Prefix block = p.widen_to(a->scope_length);
  const net::Prefix sibling = net::Prefix::from_slash24_index(
      block.first_slash24_index() +
      static_cast<std::uint32_t>(block.slash24_count()) - 1);
  const auto b = server.resolve(name, sibling);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->address, b->address);
  EXPECT_EQ(a->scope_length, b->scope_length);
}

TEST(Authoritative, WireHandleAnswersWithEcsScope) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  const auto query = dns::make_query(
      99, *dns::DnsName::parse("www.example.com"), dns::RecordType::kA, true,
      dns::EcsOption::for_query(*net::Prefix::parse("100.64.5.0/24")));
  const auto response = server.handle(query);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNoError);
  EXPECT_TRUE(response.header.aa);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].ttl, 300u);
  ASSERT_TRUE(response.edns && response.edns->ecs);
  EXPECT_GE(response.edns->ecs->scope_prefix_length, 16);
  EXPECT_LE(response.edns->ecs->scope_prefix_length, 24);
}

TEST(Authoritative, WireHandleNxdomainForUnknownZone) {
  AuthoritativeServer server;
  server.add_zone(test_zone());
  const auto query = dns::make_query(
      1, *dns::DnsName::parse("nope.example.net"), dns::RecordType::kA, true);
  EXPECT_EQ(server.handle(query).header.rcode, dns::RCode::kNxDomain);
}

TEST(Authoritative, WireHandleFormErrForEmptyQuestion) {
  AuthoritativeServer server;
  dns::DnsMessage query;
  EXPECT_EQ(server.handle(query).header.rcode, dns::RCode::kFormErr);
}

TEST(Authoritative, TopologyClampNeverWidensPastAnnouncement) {
  // With a routing table attached, response scopes must be at least as
  // specific as the announcement containing the client — a CDN never
  // aggregates across BGP boundaries.
  AuthoritativeServer server;
  server.add_zone(test_zone(16, 24));
  net::PrefixTrie<std::uint32_t> topology;
  topology.insert(*net::Prefix::parse("100.64.0.0/22"), 1);
  topology.insert(*net::Prefix::parse("100.64.4.0/24"), 2);
  server.set_topology(&topology);
  const auto name = *dns::DnsName::parse("www.example.com");
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto scope = server.scope_for(
        name, net::Prefix::from_slash24_index((0x6440u << 8 | 0) / 256 + i));
    (void)scope;
  }
  EXPECT_GE(*server.scope_for(name, *net::Prefix::parse("100.64.1.0/24")),
            22);
  EXPECT_GE(*server.scope_for(name, *net::Prefix::parse("100.64.4.0/24")),
            24);
  // Unannounced space stays unclamped (walk bounds only).
  const auto unrouted =
      *server.scope_for(name, *net::Prefix::parse("100.65.0.0/24"));
  EXPECT_GE(unrouted, 16);
  EXPECT_LE(unrouted, 24);
}

// ------------------------------------------------------------------- cache

CacheKey key_for(const char* name, const char* prefix) {
  return CacheKey{*dns::DnsName::parse(name), dns::RecordType::kA,
                  *net::Prefix::parse(prefix)};
}

CacheEntry entry_expiring(net::SimTime at) {
  CacheEntry entry;
  entry.rdata = dns::AData{net::Ipv4Addr(1)};
  entry.original_ttl = 300;
  entry.expires_at = at;
  return entry;
}

TEST(DnsCache, HitWithinTtlMissAfter) {
  DnsCache cache(16);
  cache.insert(key_for("a.example", "1.2.3.0/24"), entry_expiring(100));
  EXPECT_NE(cache.lookup(key_for("a.example", "1.2.3.0/24"), 50), nullptr);
  EXPECT_EQ(cache.lookup(key_for("a.example", "1.2.3.0/24"), 100), nullptr);
  EXPECT_EQ(cache.size(), 0u);  // expired entry dropped
}

TEST(DnsCache, ScopeIsPartOfKey) {
  DnsCache cache(16);
  cache.insert(key_for("a.example", "1.2.0.0/16"), entry_expiring(100));
  EXPECT_EQ(cache.lookup(key_for("a.example", "1.2.3.0/24"), 1), nullptr);
  EXPECT_NE(cache.lookup(key_for("a.example", "1.2.0.0/16"), 1), nullptr);
}

TEST(DnsCache, LruEvictsOldest) {
  DnsCache cache(2);
  cache.insert(key_for("a.example", "1.0.0.0/24"), entry_expiring(1e9));
  cache.insert(key_for("b.example", "2.0.0.0/24"), entry_expiring(1e9));
  // Touch a, making b the LRU victim.
  EXPECT_NE(cache.lookup(key_for("a.example", "1.0.0.0/24"), 1), nullptr);
  cache.insert(key_for("c.example", "3.0.0.0/24"), entry_expiring(1e9));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.lookup(key_for("a.example", "1.0.0.0/24"), 1), nullptr);
  EXPECT_EQ(cache.lookup(key_for("b.example", "2.0.0.0/24"), 1), nullptr);
}

TEST(DnsCache, ReinsertRefreshesEntry) {
  DnsCache cache(4);
  cache.insert(key_for("a.example", "1.0.0.0/24"), entry_expiring(10));
  cache.insert(key_for("a.example", "1.0.0.0/24"), entry_expiring(100));
  EXPECT_EQ(cache.size(), 1u);
  const CacheEntry* entry = cache.lookup(key_for("a.example", "1.0.0.0/24"),
                                         50);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->remaining_ttl(50), 50u);
}

TEST(DnsCache, CountsHitsAndMisses) {
  DnsCache cache(4);
  cache.insert(key_for("a.example", "1.0.0.0/24"), entry_expiring(1e9));
  cache.lookup(key_for("a.example", "1.0.0.0/24"), 1);
  cache.lookup(key_for("z.example", "9.0.0.0/24"), 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ------------------------------------------------------------ token bucket

TEST(TokenBucket, AllowsBurstThenLimits) {
  TokenBucket bucket(10, 5);  // 10/s, burst 5
  int allowed = 0;
  for (int i = 0; i < 20; ++i) allowed += bucket.allow(0.0);
  EXPECT_EQ(allowed, 5);
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(10, 5);
  for (int i = 0; i < 5; ++i) bucket.allow(0.0);
  EXPECT_FALSE(bucket.allow(0.0));
  EXPECT_TRUE(bucket.allow(0.1));   // one token refilled
  EXPECT_FALSE(bucket.allow(0.1));
  EXPECT_TRUE(bucket.allow(1.0));
}

TEST(TokenBucket, SustainedRateMatchesConfig) {
  TokenBucket bucket(50, 50);
  int allowed = 0;
  for (int i = 0; i < 1000; ++i) {
    allowed += bucket.allow(i * 0.01);  // 100 attempts/s for 10s
  }
  // ~50/s sustained plus the initial burst.
  EXPECT_NEAR(allowed, 550, 30);
}

TEST(TokenBucket, ClockResetStartsNewEpoch) {
  TokenBucket bucket(1000, 1000);
  for (int i = 0; i < 600; ++i) EXPECT_TRUE(bucket.allow(i * 0.001));
  // A new measurement stage restarts its schedule at t=0; the limiter must
  // keep refilling rather than starving the stage.
  int allowed = 0;
  for (int i = 0; i < 2000; ++i) allowed += bucket.allow(i * 0.001);
  EXPECT_GT(allowed, 1900);
}

TEST(TokenBucket, RefillExactlyAtTokenBoundary) {
  // Draining the burst then asking again exactly when one token's worth of
  // time has elapsed must admit exactly one query — no off-by-one at the
  // refill boundary in either direction.
  TokenBucket bucket(10, 1);
  EXPECT_TRUE(bucket.allow(0.0));
  EXPECT_FALSE(bucket.allow(0.0999));  // 1 µs early: still empty
  EXPECT_TRUE(bucket.allow(0.1));      // exactly one token accrued
  EXPECT_FALSE(bucket.allow(0.1));     // and only one
}

TEST(TokenBucket, RefillCapsAtBurstAcrossLongIdle) {
  TokenBucket bucket(100, 5);
  for (int i = 0; i < 5; ++i) bucket.allow(0.0);
  // An hour idle refills to the burst cap, not rate × elapsed.
  EXPECT_NEAR(bucket.tokens(3600.0), 5.0, 1e-9);
  int allowed = 0;
  for (int i = 0; i < 50; ++i) allowed += bucket.allow(3600.0);
  EXPECT_EQ(allowed, 5);
}

TEST(TokenBucket, SameTimestampWindowSharesOneRefill) {
  // Many queries carrying an identical timestamp (one campaign scheduling
  // window) draw from a single refill, not one refill each.
  TokenBucket bucket(10, 2);
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(bucket.allow(5.0));
  EXPECT_FALSE(bucket.allow(5.0));
  EXPECT_FALSE(bucket.allow(5.0));
  EXPECT_EQ(bucket.rejected(), 2u);
}

// ------------------------------------------------------- upstream faults

TEST(UpstreamFaults, DisabledMeansAlwaysOk) {
  AuthoritativeServer auth;
  ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  auth.add_zone(zone);
  const auto prefix = *net::Prefix::parse("100.64.5.0/24");
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(auth.query_outcome(zone.name, prefix, 0, attempt),
              QueryOutcome::kOk);
  }
}

TEST(UpstreamFaults, OutcomeIsDeterministicPerKey) {
  AuthoritativeServer auth;
  ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  auth.add_zone(zone);
  UpstreamFaults faults;
  faults.servfail_probability = 0.3;
  faults.timeout_probability = 0.3;
  auth.set_faults(faults);
  const auto prefix = *net::Prefix::parse("100.64.5.0/24");
  for (int attempt = 0; attempt < 20; ++attempt) {
    const auto first = auth.query_outcome(zone.name, prefix, 0, attempt);
    EXPECT_EQ(first, auth.query_outcome(zone.name, prefix, 0, attempt));
  }
  // A different attempt index re-rolls: over many attempts all three
  // outcomes appear at these rates.
  int ok = 0, servfail = 0, timeout = 0;
  for (int attempt = 0; attempt < 300; ++attempt) {
    switch (auth.query_outcome(zone.name, prefix, 0, attempt)) {
      case QueryOutcome::kOk: ++ok; break;
      case QueryOutcome::kServfail: ++servfail; break;
      case QueryOutcome::kTimeout: ++timeout; break;
    }
  }
  EXPECT_GT(ok, 60);
  EXPECT_GT(servfail, 30);
  EXPECT_GT(timeout, 30);
}

}  // namespace
}  // namespace netclients::dnssrv
