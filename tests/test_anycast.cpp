// Tests for the anycast substrate: PoP table shape, catchment behaviour,
// and the vantage fleet's PoP coverage (the paper's 22-of-45).

#include <gtest/gtest.h>

#include <set>

#include "anycast/catchment.h"
#include "anycast/pop.h"
#include "anycast/vantage.h"
#include "net/rng.h"

namespace netclients::anycast {
namespace {

TEST(PopTable, DefaultShapeMatchesPaper) {
  const PopTable pops = PopTable::google_default();
  EXPECT_EQ(pops.size(), 45u);
  EXPECT_EQ(pops.active_pops().size(), 27u);  // 22 probed + 5 unprobed
  int inactive = 0;
  for (const auto& site : pops.sites()) inactive += !site.active;
  EXPECT_EQ(inactive, 18);
}

TEST(PopTable, IdsAreDense) {
  const PopTable pops = PopTable::google_default();
  for (std::size_t i = 0; i < pops.size(); ++i) {
    EXPECT_EQ(pops.site(static_cast<PopId>(i)).id, static_cast<PopId>(i));
  }
}

TEST(PopTable, FindByCity) {
  const PopTable pops = PopTable::google_default();
  ASSERT_TRUE(pops.find_by_city("Groningen").has_value());
  EXPECT_FALSE(pops.find_by_city("Atlantis").has_value());
}

TEST(PopTable, NearestActiveIsGeographicallySane) {
  const PopTable pops = PopTable::google_default();
  const PopId berlin_best = pops.nearest_active({52.52, 13.405});
  const auto& site = pops.site(berlin_best);
  // Berlin's nearest active PoP must be in Europe.
  EXPECT_TRUE(site.country_code == "DE" || site.country_code == "NL" ||
              site.country_code == "CH" || site.country_code == "GB" ||
              site.country_code == "FI")
      << site.city;
}

TEST(PopTable, NearestActiveNeverReturnsInactive) {
  const PopTable pops = PopTable::google_default();
  net::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const PopId pop = pops.nearest_active(
        {rng.uniform(-60, 70), rng.uniform(-180, 180)});
    ASSERT_NE(pop, kNoPop);
    EXPECT_TRUE(pops.site(pop).active);
  }
}

TEST(Catchment, DeterministicForSameNetwork) {
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, 42);
  const net::LatLon loc{48.85, 2.35};
  EXPECT_EQ(model.pop_for(loc, 1234), model.pop_for(loc, 1234));
}

TEST(Catchment, OnlyActivePops) {
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, 42);
  net::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const PopId pop = model.pop_for(
        {rng.uniform(-60, 70), rng.uniform(-180, 180)}, rng());
    ASSERT_NE(pop, kNoPop);
    EXPECT_TRUE(pops.site(pop).active);
  }
}

TEST(Catchment, MostClientsLandOnNearbyPop) {
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, 42);
  net::Rng rng(6);
  int nearby = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const net::LatLon loc{rng.uniform(30, 55), rng.uniform(-120, 20)};
    const PopId pop = model.pop_for(loc, rng());
    const double km = net::haversine_km(loc, pops.site(pop).location);
    nearby += km < 3000;
  }
  // Anycast mostly routes near, but not always [8,21,24].
  EXPECT_GT(nearby, n * 3 / 4);
}

TEST(Catchment, RouteBiasForcesAlternate) {
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, 42);
  const PopId buenos_aires = *pops.find_by_city("Buenos Aires");
  RouteBias bias;
  bias.misroute_probability = 1.0;
  bias.alternates = {buenos_aires};
  net::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(model.pop_for({40.0, -100.0}, rng(), bias), buenos_aires);
  }
}

TEST(Catchment, ZeroBiasNeverMisroutes) {
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, 42);
  RouteBias bias;  // empty
  const net::LatLon paris{48.85, 2.35};
  EXPECT_EQ(model.pop_for(paris, 9, bias), model.pop_for(paris, 9));
}

TEST(Vantage, FleetHasAwsAndVultr) {
  const auto fleet = default_vantage_fleet();
  EXPECT_GE(fleet.size(), 20u);
  bool aws = false, vultr = false;
  std::set<std::uint32_t> addresses;
  for (const auto& vp : fleet) {
    aws |= vp.provider == "aws";
    vultr |= vp.provider == "vultr";
    addresses.insert(vp.address.value());
  }
  EXPECT_TRUE(aws);
  EXPECT_TRUE(vultr);
  EXPECT_EQ(addresses.size(), fleet.size());  // unique probe sources
}

TEST(Vantage, FleetReachesExactly22Pops) {
  // The paper's coverage: the AWS+Vultr fleet reaches 22 of the 27 active
  // PoPs; Hong Kong, Osaka, Hamina, Buenos Aires, Lagos stay unprobed.
  const PopTable pops = PopTable::google_default();
  const CatchmentModel model(&pops, net::stable_seed(42, 0xCA7C), 0.22);
  std::set<PopId> reached;
  for (const auto& vp : default_vantage_fleet()) {
    reached.insert(model.pop_for(vp.location, vp.address.value()));
  }
  EXPECT_EQ(reached.size(), 22u);
  for (const char* unprobed :
       {"Hong Kong", "Osaka", "Hamina", "Buenos Aires", "Lagos"}) {
    EXPECT_FALSE(reached.contains(*pops.find_by_city(unprobed)))
        << unprobed << " should stay unprobed";
  }
}

}  // namespace
}  // namespace netclients::anycast
