// Serving-tier suite (labels: determinism, tsan).
//
// Pins the `serve::Service` contracts the snapshot-handle API promises:
//
//  * Handle lifetime — a handle pinned before a publish keeps answering
//    from its epoch set across any number of later publishes, and a
//    superseded snapshot retires (on_retire fires) only when its last
//    handle drops, never earlier.
//  * Replay determinism — WorkloadDriver::replay digests are
//    byte-identical at any intra-batch parallelism and any
//    REPRO_THREADS, and handle lookups equal the single-query path and
//    the trie reference oracle elementwise.
//  * Concurrent publish/read — real reader threads acquire and look up
//    while a publisher swaps epochs in; per-thread snapshot versions are
//    monotone (shard stores happen in shard order) and every batch is
//    answered by exactly one version. Run under tsan via the suite's
//    `tsan` label.
//
// One shared fixture runs the two-epoch campaign once; every case reads
// from it. Campaigns are expensive — keep the world at kScale.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario/scenario.h"
#include "core/serve/service.h"
#include "core/serve/workload.h"
#include "core/snapshot/snapshot.h"
#include "net/rng.h"

namespace netclients::core {
namespace {

constexpr double kScale = 2048;

class ServeSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(ScenarioBuilder()
                                 .scale_denominator(kScale)
                                 .epochs(2)
                                 .build());
    epochs_ = new std::vector<snapshot::EpochRecord>(scenario_->run_epochs());
  }
  static void TearDownTestSuite() {
    delete epochs_;
    delete scenario_;
    epochs_ = nullptr;
    scenario_ = nullptr;
  }

  static const Scenario& scenario() { return *scenario_; }
  static const std::vector<snapshot::EpochRecord>& epochs() {
    return *epochs_;
  }
  static std::span<const snapshot::EpochRecord> chain() {
    return std::span<const snapshot::EpochRecord>(*epochs_);
  }
  /// A copy of epoch `i` re-keyed to a fresh epoch_id, as the churn
  /// publisher would roll in.
  static snapshot::EpochRecord rekeyed(std::size_t i, std::uint32_t id) {
    snapshot::EpochRecord record = epochs()[i % epochs().size()];
    record.epoch_id = id;
    return record;
  }

  static std::vector<net::Ipv4Addr> make_queries(std::size_t count,
                                                 std::uint64_t seed) {
    net::Rng rng(seed);
    std::vector<net::Ipv4Addr> queries;
    queries.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
    }
    return queries;
  }

 private:
  static Scenario* scenario_;
  static std::vector<snapshot::EpochRecord>* epochs_;
};

Scenario* ServeSuite::scenario_ = nullptr;
std::vector<snapshot::EpochRecord>* ServeSuite::epochs_ = nullptr;

/// Runs `fn` with REPRO_THREADS pinned to `threads`, restoring the
/// previous value afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const char* prev = std::getenv("REPRO_THREADS");
  const std::string saved = prev ? prev : "";
  ::setenv("REPRO_THREADS", std::to_string(threads).c_str(), 1);
  auto result = fn();
  if (prev) {
    ::setenv("REPRO_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("REPRO_THREADS");
  }
  return result;
}

/// Thread-safe recorder handed to ServiceOptions::on_retire.
struct RetireLog {
  std::mutex mu;
  std::vector<std::uint64_t> versions;

  void record(std::uint64_t version) {
    std::lock_guard<std::mutex> lock(mu);
    versions.push_back(version);
  }
  bool contains(std::uint64_t version) {
    std::lock_guard<std::mutex> lock(mu);
    return std::find(versions.begin(), versions.end(), version) !=
           versions.end();
  }
};

// ---------------------------------------------------------- handle lifetime

TEST_F(ServeSuite, HandlePinsItsEpochSetAcrossPublishes) {
  serve::Service service;
  service.publish(epochs()[0]);
  const serve::SnapshotHandle pinned = service.acquire();
  ASSERT_EQ(pinned->version(), 1u);
  ASSERT_EQ(pinned->epoch_count(), 1u);

  const auto queries = make_queries(20000, 0x9140);
  const auto before = pinned->lookup_many(queries, 1);

  // Two publishes roll past the pinned handle.
  service.publish(epochs()[1]);
  service.publish(rekeyed(0, 7));
  EXPECT_EQ(service.version(), 3u);
  EXPECT_EQ(service.acquire()->version(), 3u);
  EXPECT_EQ(service.acquire()->epoch_count(), 3u);

  // The pinned handle still answers from the one-epoch world, bit for
  // bit — an immutable view, not a cache that drifted.
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(pinned->epoch_count(), 1u);
  EXPECT_EQ(pinned->lookup_many(queries, 1), before);
}

TEST_F(ServeSuite, RetireFiresOnlyWhenLastHandleDrops) {
  auto log = std::make_shared<RetireLog>();
  serve::ServiceOptions options;
  options.on_retire = [log](std::uint64_t version) { log->record(version); };
  serve::Service service(options);

  service.publish(epochs()[0]);  // version 1; empty version 0 retires now
  EXPECT_TRUE(log->contains(0));

  serve::SnapshotHandle first = service.acquire();
  serve::SnapshotHandle second = first;  // two pins on version 1

  service.publish(epochs()[1]);   // version 2 supersedes 1
  service.publish(rekeyed(0, 9));  // version 3 supersedes 2
  // Version 2 had no handles: it retires as soon as version 3 lands.
  EXPECT_TRUE(log->contains(2));
  // Version 1 is still pinned twice — dropping one handle is not enough.
  EXPECT_FALSE(log->contains(1));
  first.reset();
  EXPECT_FALSE(log->contains(1));
  // The LAST pin dropping frees it (deleter runs on the dropping thread).
  second.reset();
  EXPECT_TRUE(log->contains(1));
}

TEST_F(ServeSuite, EmptyServiceServesVersionZeroMisses) {
  serve::Service service;
  EXPECT_EQ(service.version(), 0u);
  const serve::SnapshotHandle handle = service.acquire();
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->version(), 0u);
  EXPECT_EQ(handle->epoch_count(), 0u);
  EXPECT_FALSE(handle->lookup(net::Ipv4Addr(0x08080808)).active);
}

TEST_F(ServeSuite, MaxEpochsWindowAgesOldestOut) {
  serve::ServiceOptions options;
  options.max_epochs = 2;
  serve::Service service(options);
  service.publish(epochs()[0]);
  service.publish(epochs()[1]);
  service.publish(rekeyed(0, 11));
  EXPECT_EQ(service.version(), 3u);
  EXPECT_EQ(service.chain_length(), 2u);
  const serve::SnapshotHandle handle = service.acquire();
  EXPECT_EQ(handle->epoch_count(), 2u);
  EXPECT_EQ(handle->latest_epoch(), 11u);
}

TEST_F(ServeSuite, AllShardsServeTheSameVersionBetweenPublishes) {
  serve::ServiceOptions options;
  options.shards = 8;
  serve::Service service(options);
  ASSERT_EQ(service.shard_count(), 8u);
  service.publish(chain());
  for (std::size_t shard = 0; shard < service.shard_count(); ++shard) {
    EXPECT_EQ(service.acquire(shard)->version(), 1u) << "shard " << shard;
  }
}

// ------------------------------------------------------ replay determinism

TEST_F(ServeSuite, ReplayDigestIdenticalAcrossParallelism) {
  serve::WorkloadOptions options;
  options.users = 1 << 14;
  options.queries = 1 << 16;
  options.batch = 128;
  const serve::WorkloadDriver driver(options, chain());
  ASSERT_GT(driver.query_count(), 0u);

  const auto replay_at = [&](int lookup_threads) {
    serve::Service service;
    service.publish(epochs()[0]);
    return driver.replay(service, chain().subspan(1),
                         /*publish_every=*/driver.batch_count() / 3,
                         lookup_threads);
  };
  const serve::ReplayResult one = replay_at(1);
  const serve::ReplayResult two = replay_at(2);
  const serve::ReplayResult eight = replay_at(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_GT(one.publishes, 0u);
  EXPECT_GT(one.hits, 0u);
  EXPECT_EQ(one.final_version, 1u + chain().size() - 1);

  // REPRO_THREADS env form (lookup_threads = 0) must agree too.
  const auto env_one = with_threads(1, [&] { return replay_at(0); });
  const auto env_eight = with_threads(8, [&] { return replay_at(0); });
  EXPECT_EQ(env_one, env_eight);
  EXPECT_EQ(one, env_one);
}

TEST_F(ServeSuite, HandleLookupsMatchSingleQueryAndReferenceOracle) {
  serve::Service service;
  service.publish(chain());
  const serve::SnapshotHandle handle = service.acquire();
  const auto queries = make_queries(50000, 0x04AC1E);
  const auto batched = handle->lookup_many(queries, 4);
  for (std::size_t i = 0; i < queries.size(); i += 61) {
    ASSERT_EQ(handle->lookup(queries[i]), batched[i]) << "query " << i;
    ASSERT_EQ(handle->index().lookup_reference(queries[i]), batched[i])
        << "query " << i;
  }
}

TEST_F(ServeSuite, WorkloadGenerationIsDeterministicInOptions) {
  serve::WorkloadOptions options;
  options.users = 1 << 12;
  options.queries = 1 << 14;
  options.batch = 64;
  const serve::WorkloadDriver a(options, chain());
  const serve::WorkloadDriver b(options, chain());
  ASSERT_EQ(a.query_count(), b.query_count());
  ASSERT_EQ(a.batch_count(), b.batch_count());
  for (std::size_t i = 0; i < a.batch_count(); ++i) {
    const auto batch_a = a.batch(i);
    const auto batch_b = b.batch(i);
    ASSERT_EQ(batch_a.size(), batch_b.size()) << "batch " << i;
    ASSERT_TRUE(std::equal(batch_a.begin(), batch_a.end(), batch_b.begin()))
        << "batch " << i;
  }

  // The diurnal burst model must actually modulate batch sizes…
  EXPECT_GT(a.max_batch(), options.batch);
  // …and a re-seeded driver must produce a different stream.
  serve::WorkloadOptions reseeded = options;
  reseeded.seed ^= 0xDEADBEEF;
  const serve::WorkloadDriver c(reseeded, chain());
  bool any_difference = false;
  const auto batch_a0 = a.batch(0);
  const auto batch_c0 = c.batch(0);
  for (std::size_t i = 0; i < std::min(batch_a0.size(), batch_c0.size());
       ++i) {
    any_difference |= !(batch_a0[i] == batch_c0[i]);
  }
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------------- concurrent publish/read

TEST_F(ServeSuite, ConcurrentPublishReadStress) {
  serve::Service service;
  service.publish(epochs()[0]);

  constexpr int kReaders = 4;
  constexpr int kIterations = 200;
  constexpr int kPublishes = 32;
  const auto queries = make_queries(512, 0x57E55);

  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  std::vector<std::string> failures(kReaders);
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      std::vector<serve::LookupResult> out(queries.size());
      std::uint64_t last_version = 0;
      for (int i = 0; i < kIterations; ++i) {
        const serve::SnapshotHandle handle = service.acquire();
        // acquire() pins this thread to one shard, and a publish stores
        // shard by shard — so the versions one thread observes never go
        // backwards.
        if (handle->version() < last_version) {
          failures[t] = "version went backwards";
          return;
        }
        last_version = handle->version();
        handle->lookup_many(queries, out.data(), 1);
        for (const auto& result : out) {
          if (result.active && result.prefix.length() == 0) {
            failures[t] = "active result with empty prefix";
            return;
          }
        }
      }
    });
  }

  start.store(true, std::memory_order_release);
  for (int p = 0; p < kPublishes; ++p) {
    service.publish(rekeyed(p, 100 + static_cast<std::uint32_t>(p)));
  }
  for (auto& thread : readers) thread.join();
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(failures[t], "") << "reader " << t;
  }
  EXPECT_EQ(service.version(), 1u + kPublishes);
  EXPECT_EQ(service.acquire()->version(), 1u + kPublishes);
}

TEST_F(ServeSuite, ConcurrentChurnWorkloadAnswersEveryBatch) {
  serve::WorkloadOptions options;
  options.users = 1 << 12;
  options.queries = 1 << 15;
  options.batch = 128;
  options.reader_threads = 3;
  options.publish_pause_us = 50;
  const serve::WorkloadDriver driver(options, chain());

  serve::Service service;
  service.publish(chain());
  const serve::WorkloadReport report =
      driver.run_under_churn(service, chain());
  EXPECT_EQ(report.steady.queries, driver.query_count());
  EXPECT_EQ(report.churn.queries, driver.query_count());
  EXPECT_EQ(report.steady.batches, driver.batch_count());
  EXPECT_EQ(report.churn.batches, driver.batch_count());
  EXPECT_GT(report.churn.publishes, 0u);
  EXPECT_GE(report.churn.version_min, 1u);
  // The service's final version reflects every publish the churn phase
  // completed on top of the bulk seed.
  EXPECT_EQ(service.version(), 1u + report.churn.publishes);
}

// ------------------------------------------------------------- API surface

TEST_F(ServeSuite, SpanLookupManyIsTheOnlyBatchedSurface) {
  // PR 8's deprecated ptr+count shim is gone; the span core answers
  // identically through the handle passthrough and the raw index.
  serve::Service service;
  service.publish(chain());
  const serve::SnapshotHandle handle = service.acquire();
  const auto queries = make_queries(4096, 0x5411);
  const auto expected = handle->lookup_many(queries, 1);

  std::vector<serve::LookupResult> via_index(queries.size());
  handle->index().lookup_many(std::span<const net::Ipv4Addr>(queries),
                              via_index.data(), 1);
  EXPECT_EQ(via_index, expected);
}

TEST_F(ServeSuite, ScenarioServeEpochsPublishesRollingChain) {
  const auto service = scenario().serve_epochs(2);
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->version(), 2u);
  EXPECT_EQ(service->chain_length(), 2u);
  const serve::SnapshotHandle handle = service->acquire();
  EXPECT_EQ(handle->epoch_count(), 2u);
  EXPECT_GT(handle->index().prefix_count(), 0u);
  // Epoch-by-epoch publishing must converge on the same index a bulk
  // seed of the same records builds.
  serve::Service bulk;
  bulk.publish(chain());
  const auto queries = make_queries(20000, 0x5CE7A);
  EXPECT_EQ(handle->lookup_many(queries, 1),
            bulk.acquire()->lookup_many(queries, 1));
}

}  // namespace
}  // namespace netclients::core
