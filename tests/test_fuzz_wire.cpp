// Robustness fuzzing for the DNS wire decoder: random mutations of valid
// messages and fully random buffers must never crash, never loop, and —
// when a mutant still decodes — must re-encode to something that decodes
// to the same message (decode∘encode idempotence).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "dns/packet.h"
#include "dns/wire.h"
#include "net/rng.h"
#include "roots/trace.h"

namespace netclients::dns {
namespace {

DnsMessage base_message(net::Rng& rng) {
  DnsMessage msg = make_query(
      static_cast<std::uint16_t>(rng()), *DnsName::parse("www.example.com"),
      RecordType::kA, rng.bernoulli(0.5),
      EcsOption::for_query(
          net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                      static_cast<std::uint8_t>(rng.below(25)))));
  if (rng.bernoulli(0.5)) {
    msg.header.qr = true;
    msg.answers.push_back(ResourceRecord{
        *DnsName::parse("www.example.com"), RecordType::kA, kClassIn,
        static_cast<std::uint32_t>(rng.below(3600)),
        AData{net::Ipv4Addr(static_cast<std::uint32_t>(rng()))}});
    msg.answers.push_back(ResourceRecord{
        *DnsName::parse("alias.example.com"), RecordType::kTxt, kClassIn,
        60, TxtData{"some text payload"}});
  }
  return msg;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, MutatedMessagesNeverCrashAndStayIdempotent) {
  net::Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    auto wire = encode(base_message(rng));
    // Apply 1-4 random byte mutations / truncations / extensions.
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      switch (rng.below(4)) {
        case 0:  // flip a byte
          wire[rng.below(wire.size())] ^=
              static_cast<std::uint8_t>(1 + rng.below(255));
          break;
        case 1:  // truncate
          wire.resize(rng.below(wire.size() + 1));
          break;
        case 2:  // append garbage
          wire.push_back(static_cast<std::uint8_t>(rng()));
          break;
        default:  // overwrite a length-ish field with extremes
          wire[rng.below(wire.size())] = rng.bernoulli(0.5) ? 0xFF : 0xC0;
          break;
      }
    }
    const DecodeResult first = decode(wire);
    // Differential: the zero-copy view must agree with the materializing
    // decoder on accept/reject, diagnostic, and decoded value — on every
    // mutant, not just the well-formed ones.
    std::string view_error;
    const auto view = MessageView::parse(wire, &view_error);
    ASSERT_EQ(first.ok, view.has_value());
    if (!first.ok) {
      EXPECT_EQ(first.error, view_error);
      continue;  // rejected: fine
    }
    EXPECT_EQ(view->materialize(), first.message);
    // Accepted mutants must survive a re-encode/decode cycle unchanged.
    const auto rewire = encode(first.message);
    const DecodeResult second = decode(rewire);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.message, first.message);
  }
}

TEST(WireFuzz, SeedCorpusProperties) {
  // Every checked-in fuzz seed (tests/corpus/wire/, including any crasher
  // folded back from CI) must satisfy the harness invariants. This is the
  // regression half of the fuzzing loop: crashes found by fuzz_wire land
  // here and stay fixed.
  const std::filesystem::path dir = NETCLIENTS_WIRE_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t seeds = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seeds;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<std::uint8_t> wire{std::istreambuf_iterator<char>(in), {}};
    SCOPED_TRACE(entry.path().filename().string());
    std::string view_error;
    const auto view = MessageView::parse(wire, &view_error);
    const DecodeResult first = decode(wire);
    ASSERT_EQ(first.ok, view.has_value());
    if (!first.ok) {
      EXPECT_EQ(first.error, view_error);
      continue;
    }
    EXPECT_EQ(view->materialize(), first.message);
    const auto rewire = encode(first.message);
    const DecodeResult second = decode(rewire);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.message, first.message);
    EXPECT_EQ(encode(second.message), rewire);
  }
  EXPECT_GE(seeds, 9u) << "seed corpus went missing";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(0xF1, 0xF2, 0xF3, 0xF4, 0xF5,
                                           0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
                                           0xFB, 0xFC, 0xABCD, 0x5EED,
                                           0xC0FFEE, 0xB16B00B5));

TEST(WireFuzz, PureGarbageNeverCrashes) {
  net::Rng rng(0xDEAD);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> wire(rng.below(160));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng());
    (void)decode(wire);  // must neither crash nor hang
  }
  SUCCEED();
}

TEST(WireFuzz, AllZeroAndAllOnesBuffers) {
  for (std::size_t len : {0u, 1u, 11u, 12u, 13u, 64u, 512u}) {
    std::vector<std::uint8_t> zeros(len, 0x00);
    std::vector<std::uint8_t> ones(len, 0xFF);
    (void)decode(zeros);
    (void)decode(ones);
  }
  SUCCEED();
}

TEST(WireFuzz, DeepPointerChainRejected) {
  // A ladder of compression pointers, each pointing one step back; the
  // hop guard must reject far before unbounded recursion.
  std::vector<std::uint8_t> wire = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  const std::size_t ladder_start = wire.size();
  // First rung: a real (empty) name would terminate; build pointer rungs
  // that each point to the previous rung.
  wire.push_back(0x01);
  wire.push_back('a');
  wire.push_back(0x00);  // name "a" at ladder_start
  std::size_t prev = ladder_start;
  for (int i = 0; i < 100; ++i) {
    const std::size_t here = wire.size();
    wire.push_back(static_cast<std::uint8_t>(0xC0 | (prev >> 8)));
    wire.push_back(static_cast<std::uint8_t>(prev & 0xFF));
    prev = here;
  }
  // Question name = final pointer; then qtype/qclass.
  wire.push_back(static_cast<std::uint8_t>(0xC0 | (prev >> 8)));
  wire.push_back(static_cast<std::uint8_t>(prev & 0xFF));
  wire.push_back(0x00);
  wire.push_back(0x01);
  wire.push_back(0x00);
  wire.push_back(0x01);
  // Whether accepted or rejected, it must terminate quickly; the question
  // name itself is behind >64 hops, so the guard rejects it.
  const DecodeResult result = decode(wire);
  EXPECT_FALSE(result.ok);
}

// ------------------------------------------------- trace-file corruption

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, MutatedTraceFilesNeverCrashTolerantReader) {
  net::Rng rng(GetParam());
  const std::string path =
      "trace_fuzz_" + std::to_string(GetParam()) + ".bin";
  for (int iter = 0; iter < 60; ++iter) {
    // A small valid trace...
    std::vector<roots::TraceRecord> records(1 + rng.below(6));
    for (auto& rec : records) {
      rec.source = net::Ipv4Addr(static_cast<std::uint32_t>(rng()));
      rec.qname = *DnsName::parse(rng.bernoulli(0.5) ? "qpwoeiruty"
                                                     : "www.example.com");
      rec.timestamp = static_cast<double>(rng.below(1000));
    }
    ASSERT_TRUE(roots::TraceFile::write(path, records));
    // ...then random byte flips / truncation applied to the raw file.
    std::vector<std::uint8_t> bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    const int mutations = 1 + static_cast<int>(rng.below(5));
    for (int m = 0; m < mutations && !bytes.empty(); ++m) {
      if (rng.bernoulli(0.3)) {
        bytes.resize(rng.below(bytes.size() + 1));
      } else if (!bytes.empty()) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    // Tolerant read must terminate without crashing, and its stats must
    // agree with what it actually kept.
    std::vector<roots::TraceRecord> loaded;
    roots::TraceFile::ReadStats stats;
    if (roots::TraceFile::read_tolerant(path, &loaded, &stats)) {
      EXPECT_EQ(stats.records_read, loaded.size());
      if (stats.records_skipped > 0) EXPECT_TRUE(stats.truncated);
    }
    // The strict reader must also never crash on the same mutant.
    std::vector<roots::TraceRecord> strict;
    (void)roots::TraceFile::read(path, &strict);
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Values(0x71, 0x72, 0x73, 0x74));

}  // namespace
}  // namespace netclients::dns
