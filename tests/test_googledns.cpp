// Tests for the Google Public DNS model: RD=0 cache-snooping semantics,
// ECS scope matching, pool redundancy, rate limiting, the o-o.myaddr
// service, and consistency between the explicit (event-driven) cache and
// the analytic occupancy model.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dns/packet.h"
#include "dns/wire.h"
#include "googledns/google_dns.h"
#include "net/rng.h"

namespace netclients::googledns {
namespace {

class FixedRateActivity final : public ClientActivityModel {
 public:
  explicit FixedRateActivity(double rate) : rate_(rate) {}
  double arrival_rate(anycast::PopId, const dns::DnsName&,
                      net::Prefix) const override {
    return rate_;
  }

 private:
  double rate_;
};

struct Fixture {
  explicit Fixture(double analytic_rate = -1, std::uint8_t min_scope = 20,
                   std::uint8_t max_scope = 24, double drift = 0.0)
      : pops(anycast::PopTable::google_default()),
        catchment(&pops, 42, 0.22) {
    dnssrv::ZoneConfig zone;
    zone.name = *dns::DnsName::parse("www.example.com");
    zone.ttl_seconds = 300;
    zone.min_scope = min_scope;
    zone.max_scope = max_scope;
    zone.scope_drift_probability = drift;
    zone.seed = 99;
    auth.add_zone(zone);
    dnssrv::ZoneConfig no_ecs;
    no_ecs.name = *dns::DnsName::parse("noecs.example.com");
    no_ecs.supports_ecs = false;
    no_ecs.ttl_seconds = 300;
    auth.add_zone(no_ecs);
    if (analytic_rate >= 0) {
      activity = std::make_unique<FixedRateActivity>(analytic_rate);
    }
    gdns = std::make_unique<GooglePublicDns>(&pops, &catchment, &auth,
                                             GoogleDnsConfig{},
                                             activity.get());
  }

  anycast::PopTable pops;
  anycast::CatchmentModel catchment;
  dnssrv::AuthoritativeServer auth;
  std::unique_ptr<FixedRateActivity> activity;
  std::unique_ptr<GooglePublicDns> gdns;
  const dns::DnsName domain = *dns::DnsName::parse("www.example.com");
};

net::Prefix scope_block_for(Fixture& f, net::Ipv4Addr client) {
  const auto scope = f.auth.scope_for(f.domain,
                                      net::Prefix::slash24_of(client),
                                      f.gdns->config().epoch);
  return net::Prefix::slash24_of(client).widen_to(*scope);
}

TEST(GoogleDns, SnoopMissesEmptyCache) {
  Fixture f;
  const auto probe = f.gdns->probe(0, f.domain,
                                   *net::Prefix::parse("10.1.2.0/24"), 1.0,
                                   Transport::kTcp, 0, 0);
  EXPECT_FALSE(probe.cache_hit);
  EXPECT_FALSE(probe.rate_limited);
}

TEST(GoogleDns, ClientQueryThenSnoopHits) {
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  // Redundant attempts (paper: 5) cover the independent cache pools.
  f.gdns->client_query(0, f.domain, client, 10.0);
  bool hit = false;
  std::uint8_t return_scope = 0;
  for (int attempt = 0; attempt < 16 && !hit; ++attempt) {
    const auto probe = f.gdns->probe(0, f.domain, scope_block_for(f, client),
                                     20.0, Transport::kTcp, 0, attempt);
    hit = probe.cache_hit;
    return_scope = probe.return_scope;
  }
  EXPECT_TRUE(hit);
  EXPECT_GT(return_scope, 0);
}

TEST(GoogleDns, HitExpiresWithTtl) {
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  f.gdns->client_query(0, f.domain, client, 10.0);
  bool hit = false;
  for (int attempt = 0; attempt < 16 && !hit; ++attempt) {
    hit = f.gdns->probe(0, f.domain, scope_block_for(f, client), 10.0 + 400,
                        Transport::kTcp, 0, attempt)
              .cache_hit;
  }
  EXPECT_FALSE(hit) << "entry outlived its 300s TTL";
}

TEST(GoogleDns, CacheIsPerPop) {
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  f.gdns->client_query(3, f.domain, client, 10.0);
  bool hit_other_pop = false;
  for (int attempt = 0; attempt < 16; ++attempt) {
    hit_other_pop |= f.gdns->probe(7, f.domain, scope_block_for(f, client),
                                   20.0, Transport::kTcp, 0, attempt)
                         .cache_hit;
  }
  EXPECT_FALSE(hit_other_pop)
      << "anycast PoPs have independent caches (§3.1.1)";
}

TEST(GoogleDns, QueryScopeNarrowerThanEntryStillHits) {
  // RFC 7871: a cached /20-scoped entry answers queries with /24 sources
  // inside it. Probing the /24 therefore works even when the entry is
  // wider — the calibration stage relies on this.
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  f.gdns->client_query(0, f.domain, client, 10.0);
  bool hit = false;
  for (int attempt = 0; attempt < 16 && !hit; ++attempt) {
    hit = f.gdns->probe(0, f.domain, net::Prefix::slash24_of(client), 20.0,
                        Transport::kTcp, 0, attempt)
              .cache_hit;
  }
  EXPECT_TRUE(hit);
}

TEST(GoogleDns, QueryScopeWiderThanEntryMisses) {
  // The inverse direction must miss: an entry scoped /20+ cannot answer a
  // query whose ECS source is the /16 containing it.
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  f.gdns->client_query(0, f.domain, client, 10.0);
  bool hit = false;
  for (int attempt = 0; attempt < 16; ++attempt) {
    hit |= f.gdns->probe(0, f.domain, net::Prefix(client, 16), 20.0,
                         Transport::kTcp, 0, attempt)
               .cache_hit;
  }
  EXPECT_FALSE(hit);
}

TEST(GoogleDns, NonEcsDomainReturnsScopeZero) {
  Fixture f(10.0);  // analytic activity everywhere
  const auto name = *dns::DnsName::parse("noecs.example.com");
  const auto probe = f.gdns->probe(0, name,
                                   *net::Prefix::parse("10.1.2.0/24"), 50.0,
                                   Transport::kTcp, 0, 0);
  // Whatever the occupancy, a hit must carry scope 0 — which the pipeline
  // discards as carrying no per-prefix signal.
  if (probe.cache_hit) {
    EXPECT_EQ(probe.return_scope, 0);
  }
}

TEST(GoogleDns, UnknownDomainNeverHits) {
  Fixture f(10.0);
  const auto probe = f.gdns->probe(0, *dns::DnsName::parse("nope.example"),
                                   *net::Prefix::parse("10.1.2.0/24"), 50.0,
                                   Transport::kTcp, 0, 0);
  EXPECT_FALSE(probe.cache_hit);
}

TEST(GoogleDns, AnalyticHighRateHits) {
  Fixture f(10.0);  // 10 qps per (pop, block): cache effectively always warm
  int hits = 0;
  net::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const net::Prefix block(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                            24);
    const net::Prefix query =
        block.widen_to(*f.auth.scope_for(f.domain, block, 1));
    hits += f.gdns
                ->probe(0, f.domain, query, 1000.0 + i, Transport::kTcp, 0, 0)
                .cache_hit;
  }
  EXPECT_GT(hits, 45);
}

TEST(GoogleDns, AnalyticZeroRateNeverHits) {
  Fixture f(0.0);
  net::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const net::Prefix block(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                            24);
    EXPECT_FALSE(
        f.gdns->probe(0, f.domain, block, 1000.0 + i, Transport::kTcp, 0, 0)
            .cache_hit);
  }
}

TEST(GoogleDns, AnalyticOccupancyConsistentAcrossRepeatedProbes) {
  Fixture f(0.01);
  const net::Prefix block = *net::Prefix::parse("10.4.0.0/24");
  const net::Prefix query =
      block.widen_to(*f.auth.scope_for(f.domain, block, 1));
  const auto first = f.gdns->probe(0, f.domain, query, 500.0,
                                   Transport::kTcp, 0, 3);
  const auto second = f.gdns->probe(0, f.domain, query, 500.0,
                                    Transport::kTcp, 0, 3);
  EXPECT_EQ(first.cache_hit, second.cache_hit);
  EXPECT_EQ(first.return_scope, second.return_scope);
}

TEST(GoogleDns, AnalyticHitFrequencyMatchesRenewalModel) {
  // P(entry present) for Poisson arrivals at rate λ per pool with TTL T is
  // 1 - exp(-λT). Probe many distinct blocks once each and compare.
  const double rate = 0.002;  // per block; /4 pools => λ=0.0005, T=300
  Fixture f(rate);
  const double per_pool = rate / f.gdns->config().pools_per_pop;
  const double expected = 1.0 - std::exp(-per_pool * 300.0);
  net::Rng rng(3);
  int hits = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const net::Prefix block(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                            24);
    const net::Prefix query =
        block.widen_to(*f.auth.scope_for(f.domain, block, 1));
    hits += f.gdns
                ->probe(0, f.domain, query, 1e4 + i * 7.0, Transport::kTcp,
                        0, 0)
                .cache_hit;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, expected, 0.02);
}

TEST(GoogleDns, UdpRateLimitTripsTcpDoesNot) {
  Fixture f;
  int udp_limited = 0, tcp_limited = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 0.002;  // 500 qps
    udp_limited += f.gdns
                       ->probe(0, f.domain,
                               *net::Prefix::parse("10.0.0.0/24"), t,
                               Transport::kUdp, 1, i)
                       .rate_limited;
    tcp_limited += f.gdns
                       ->probe(0, f.domain,
                               *net::Prefix::parse("10.0.0.0/24"), t,
                               Transport::kTcp, 1, i)
                       .rate_limited;
  }
  EXPECT_GT(udp_limited, 1500) << "repeated-domain UDP limit should trip";
  EXPECT_EQ(tcp_limited, 0) << "TCP stays under the 1500 qps limit";
}

TEST(GoogleDns, MyaddrWireServiceReportsPop) {
  Fixture f;
  const auto query = dns::make_query(1, GooglePublicDns::myaddr_name(),
                                     dns::RecordType::kTxt, true);
  const net::LatLon groningen{53.2, 6.6};
  const auto response =
      f.gdns->handle(query, groningen, 77, 0.0, Transport::kUdp);
  ASSERT_EQ(response.answers.size(), 1u);
  const auto& txt = std::get<dns::TxtData>(response.answers[0].rdata);
  const anycast::PopId expected = f.gdns->pop_for(groningen, 77);
  EXPECT_EQ(txt.text, f.pops.site(expected).city);
}

TEST(GoogleDns, WireSnoopPathMatchesDirectProbe) {
  Fixture f;
  const net::Ipv4Addr client = *net::Ipv4Addr::parse("100.64.5.9");
  const net::LatLon vp_loc{39.0, -77.5};
  const anycast::PopId pop = f.gdns->pop_for(vp_loc, 1);
  f.gdns->client_query(pop, f.domain, client, 10.0);
  // Snoop over the wire: RD=0 + ECS, via encode/decode round trip.
  bool hit = false;
  for (std::uint16_t id = 0; id < 16 && !hit; ++id) {
    auto query = dns::make_query(
        id, f.domain, dns::RecordType::kA, false,
        dns::EcsOption::for_query(scope_block_for(f, client)));
    const auto wire = dns::encode(query);
    const auto decoded = dns::decode(wire);
    ASSERT_TRUE(decoded.ok);
    const auto response =
        f.gdns->handle(decoded.message, vp_loc, 1, 20.0, Transport::kTcp, 1);
    hit = !response.answers.empty();
    if (hit) {
      ASSERT_TRUE(response.edns && response.edns->ecs);
      EXPECT_GT(response.edns->ecs->scope_prefix_length, 0);
    }
  }
  EXPECT_TRUE(hit);
}

TEST(GoogleDns, RecursiveWireQueryPopulatesCache) {
  Fixture f;
  auto query = dns::make_query(
      5, f.domain, dns::RecordType::kA, true,
      dns::EcsOption::for_query(*net::Prefix::parse("100.64.5.0/24")));
  const auto response =
      f.gdns->handle(query, {39.0, -77.5}, 2, 1.0, Transport::kUdp);
  EXPECT_EQ(response.answers.size(), 1u);
  EXPECT_GE(f.gdns->explicit_entries(), 1u);
}

TEST(GoogleDns, UpstreamWireModeByteIdenticalToStructured) {
  // The same operation sequence against two resolvers that differ only in
  // how they talk to the authoritative upstream — RFC 1035 wire bytes vs
  // structured messages — must produce identical outcomes everywhere:
  // answers, scopes, TTLs, hit patterns.
  Fixture wire_f, structured_f;
  GoogleDnsConfig structured_config;
  structured_config.upstream_mode = UpstreamMode::kStructured;
  structured_f.gdns = std::make_unique<GooglePublicDns>(
      &structured_f.pops, &structured_f.catchment, &structured_f.auth,
      structured_config, nullptr);
  ASSERT_EQ(wire_f.gdns->config().upstream_mode, UpstreamMode::kWire);

  net::Rng rng(0x31u);
  const auto noecs = *dns::DnsName::parse("noecs.example.com");
  const auto unknown = *dns::DnsName::parse("nope.example");
  for (int i = 0; i < 60; ++i) {
    const net::Ipv4Addr client(static_cast<std::uint32_t>(rng()));
    const dns::DnsName& domain = i % 5 == 3   ? noecs
                                 : i % 7 == 6 ? unknown
                                              : wire_f.domain;
    const auto pop = static_cast<anycast::PopId>(rng.below(4));
    const double t = 10.0 + i;
    wire_f.gdns->client_query(pop, domain, client, t);
    structured_f.gdns->client_query(pop, domain, client, t);
    for (int attempt = 0; attempt < 6; ++attempt) {
      const auto query_scope =
          domain == wire_f.domain
              ? scope_block_for(wire_f, client)
              : net::Prefix::slash24_of(client);
      const auto a = wire_f.gdns->probe(pop, domain, query_scope, t + 5,
                                        Transport::kTcp, 0, attempt);
      const auto b = structured_f.gdns->probe(pop, domain, query_scope, t + 5,
                                              Transport::kTcp, 0, attempt);
      ASSERT_EQ(a.cache_hit, b.cache_hit) << "iter " << i;
      EXPECT_EQ(a.return_scope, b.return_scope);
      EXPECT_EQ(a.remaining_ttl, b.remaining_ttl);
      EXPECT_EQ(a.status, b.status);
      EXPECT_EQ(a.pop, b.pop);
    }
  }
}

TEST(GoogleDns, HandleWireByteIdenticalToStructuredPath) {
  // Two fixtures fed the identical query stream, one through handle_wire,
  // one through decode → handle → encode: stateful effects (cache fills,
  // rate limiting) evolve in lockstep, so every response must be
  // byte-identical. (handle() mutates state, so replaying both entry
  // points on one instance would double-charge it.)
  Fixture f, ref;
  dns::WireArena arena;
  const net::LatLon vp_loc{39.0, -77.5};
  net::Rng rng(0x77);
  for (int i = 0; i < 60; ++i) {
    std::optional<dns::EcsOption> ecs;
    if (rng.bernoulli(0.7)) {
      ecs = dns::EcsOption::for_query(
          net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())), 24));
    }
    const bool myaddr = rng.bernoulli(0.2);
    const auto query = dns::make_query(
        static_cast<std::uint16_t>(rng()),
        myaddr ? GooglePublicDns::myaddr_name() : f.domain,
        myaddr ? dns::RecordType::kTxt : dns::RecordType::kA,
        rng.bernoulli(0.5), ecs);
    const auto query_wire = dns::encode(query);
    const double now = 1.0 + i;
    const auto transport = rng.bernoulli(0.5) ? Transport::kUdp
                                              : Transport::kTcp;
    const auto decoded = dns::decode(query_wire);
    ASSERT_TRUE(decoded.ok);
    const auto expected = dns::encode(
        ref.gdns->handle(decoded.message, vp_loc, 7, now, transport, 1));
    const auto got = f.gdns->handle_wire(query_wire, vp_loc, 7, now,
                                         transport, arena, 1);
    EXPECT_EQ(expected, std::vector<std::uint8_t>(got.begin(), got.end()));
  }
}

TEST(GoogleDns, ExplicitEntriesCountsCacheContents) {
  Fixture f;
  EXPECT_EQ(f.gdns->explicit_entries(), 0u);
  f.gdns->client_query(0, f.domain, *net::Ipv4Addr::parse("100.64.5.9"), 1);
  f.gdns->client_query(0, f.domain, *net::Ipv4Addr::parse("200.1.2.3"), 1);
  EXPECT_EQ(f.gdns->explicit_entries(), 2u);
}

}  // namespace
}  // namespace netclients::googledns
