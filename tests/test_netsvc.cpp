// Network query front-end suite (labels: determinism, tsan).
//
// Pins the netsvc contracts end to end:
//
//  * Wire protocol — NCS1 encode/parse round-trips, byte-for-byte
//    equality with the materializing dns::encode on equivalent messages,
//    strict profile rejection (FORMERR) vs DNS rejection (drop), and
//    seed-corpus replay (the regression half of fuzz_netsvc).
//  * Transport — RFC 1035 2-byte stream framing over bus segments:
//    length prefix split across segments, zero-length frames,
//    oversize declarations, mid-frame blackholes (skip-and-count, no
//    hang), gap resets, and reassembly-state eviction.
//  * End to end — client-observed results over UDP, over TCP, and under
//    seeded loss with retries are byte-identical to direct
//    SnapshotHandle lookups at REPRO_THREADS 1 and 8; a truncated UDP
//    response provably escalates the client to TCP and completes; the
//    virtual-time service window stalls and per-connection backpressure
//    drop deterministically.
//  * Churn — a live publisher thread swapping epochs during reads (the
//    tsan half): every chunk is answered entirely by one published
//    version.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario/scenario.h"
#include "core/serve/service.h"
#include "core/snapshot/snapshot.h"
#include "dns/wire.h"
#include "net/rng.h"
#include "netsim/bus.h"
#include "netsim/fault.h"
#include "netsvc/client.h"
#include "netsvc/protocol.h"
#include "netsvc/server.h"
#include "netsvc/transport.h"

namespace netclients {
namespace {

namespace serve = core::serve;
using core::Scenario;
using core::ScenarioBuilder;
using netsvc::Client;
using netsvc::ClientOptions;
using netsvc::ParseStatus;
using netsvc::QueryView;
using netsvc::ResponseView;
using netsvc::Server;
using netsvc::ServerOptions;
using netsvc::StreamOptions;
using netsvc::StreamSocket;

constexpr double kScale = 2048;

net::Ipv4Addr addr(const char* text) { return *net::Ipv4Addr::parse(text); }

std::vector<net::Ipv4Addr> make_queries(std::size_t count,
                                        std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
  }
  return queries;
}

/// Runs `fn` with REPRO_THREADS pinned to `threads`, restoring after.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const char* prev = std::getenv("REPRO_THREADS");
  const std::string saved = prev ? prev : "";
  ::setenv("REPRO_THREADS", std::to_string(threads).c_str(), 1);
  auto result = fn();
  if (prev) {
    ::setenv("REPRO_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("REPRO_THREADS");
  }
  return result;
}

// --------------------------------------------------------------- protocol

serve::LookupResult sample_result(std::uint64_t seed) {
  net::Rng rng(seed);
  serve::LookupResult result;
  result.active = rng.bernoulli(0.7);
  result.prefix =
      net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                  static_cast<std::uint8_t>(rng.below(33)));
  result.volume = static_cast<double>(rng.below(1u << 20)) / 7.0;
  result.asn = static_cast<std::uint32_t>(rng());
  result.country = static_cast<std::uint16_t>(rng.below(400));
  result.domain_mask = static_cast<std::uint32_t>(rng());
  return result;
}

TEST(NetsvcProtocol, ResultBlobRoundTripsEveryField) {
  dns::WireArena arena;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const serve::LookupResult original =
        seed == 0 ? serve::LookupResult{} : sample_result(seed);
    dns::BufWriter writer(arena);
    netsvc::write_result_blob(original, writer);
    const auto blob = writer.finish();
    ASSERT_EQ(blob.size(), netsvc::kResultBlobSize);
    const auto decoded = netsvc::read_result_blob(blob);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original) << "seed " << seed;
  }
  EXPECT_FALSE(netsvc::read_result_blob({}).has_value());
}

TEST(NetsvcProtocol, QueryRoundTripsAndMatchesMaterializingEncoder) {
  const auto addrs = make_queries(17, 0xAB);
  dns::WireArena arena;
  const auto wire = netsvc::encode_query(0x1234, addrs, arena);
  ASSERT_EQ(wire.size(), netsvc::query_wire_size(addrs.size()));

  // Differential: the hand-rolled encoder must agree byte for byte with
  // dns::encode of the equivalent materialized query (same suffix
  // compression, same offsets).
  dns::DnsMessage equivalent;
  equivalent.header.id = 0x1234;
  for (const auto a : addrs) {
    char name[14];
    std::snprintf(name, sizeof(name), "%08x.ncs1", a.value());
    equivalent.questions.push_back(dns::Question{
        *dns::DnsName::parse(name), dns::RecordType::kTxt, dns::kClassIn});
  }
  const auto reference = dns::encode(equivalent);
  ASSERT_EQ(std::vector<std::uint8_t>(wire.begin(), wire.end()), reference);

  QueryView view;
  ASSERT_EQ(netsvc::parse_query(wire, &view), ParseStatus::kOk);
  EXPECT_EQ(view.id, 0x1234);
  EXPECT_EQ(view.addrs, addrs);
  EXPECT_EQ(view.name_offsets.size(), addrs.size());
  EXPECT_EQ(view.question_bytes.size(), wire.size() - 12);
}

TEST(NetsvcProtocol, ResponseRoundTripsAndMatchesMaterializingEncoder) {
  const auto addrs = make_queries(9, 0xCD);
  std::vector<serve::LookupResult> results;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    results.push_back(sample_result(1000 + i));
  }
  dns::WireArena query_arena, response_arena;
  const auto query_wire = netsvc::encode_query(7, addrs, query_arena);
  QueryView query;
  ASSERT_EQ(netsvc::parse_query(query_wire, &query), ParseStatus::kOk);
  const auto wire = netsvc::encode_response(query, results, response_arena);
  ASSERT_EQ(wire.size(), netsvc::response_wire_size(
                             query.question_bytes.size(), results.size()));

  // Differential against the materializing encoder: same questions, one
  // TXT answer per question whose text is the 24-byte blob.
  dns::DnsMessage equivalent;
  equivalent.header.id = 7;
  equivalent.header.qr = true;
  equivalent.header.aa = true;
  dns::WireArena blob_arena;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    char name[14];
    std::snprintf(name, sizeof(name), "%08x.ncs1", addrs[i].value());
    equivalent.questions.push_back(dns::Question{
        *dns::DnsName::parse(name), dns::RecordType::kTxt, dns::kClassIn});
    dns::BufWriter writer(blob_arena);
    netsvc::write_result_blob(results[i], writer);
    const auto blob = writer.finish();
    equivalent.answers.push_back(dns::ResourceRecord{
        *dns::DnsName::parse(name), dns::RecordType::kTxt, dns::kClassIn, 0,
        dns::TxtData{std::string(blob.begin(), blob.end())}});
  }
  ASSERT_EQ(std::vector<std::uint8_t>(wire.begin(), wire.end()),
            dns::encode(equivalent));

  ResponseView response;
  ASSERT_TRUE(netsvc::parse_response(wire, &response));
  EXPECT_EQ(response.id, 7);
  EXPECT_FALSE(response.truncated);
  EXPECT_EQ(response.rcode, dns::RCode::kNoError);
  EXPECT_EQ(response.results, results);

  // The TC=1 form echoes the questions, carries no answers.
  const auto tc_wire = netsvc::encode_truncated(query, response_arena);
  ASSERT_TRUE(netsvc::parse_response(tc_wire, &response));
  EXPECT_TRUE(response.truncated);
  EXPECT_TRUE(response.results.empty());

  // FORMERR is a bare header.
  const auto formerr = netsvc::encode_formerr(99, response_arena);
  EXPECT_EQ(formerr.size(), 12u);
  ASSERT_TRUE(netsvc::parse_response(formerr, &response));
  EXPECT_EQ(response.id, 99);
  EXPECT_EQ(response.rcode, dns::RCode::kFormErr);
}

TEST(NetsvcProtocol, ProfileViolationsEarnFormErrAndGarbageIsDropped) {
  QueryView view;
  const auto formerr_of = [&](const dns::DnsMessage& message) {
    return netsvc::parse_query(dns::encode(message), &view);
  };
  // Wrong suffix / non-hex label / wrong type / wrong shape: FORMERR.
  dns::DnsMessage query = dns::make_query(
      1, *dns::DnsName::parse("deadbeeg.ncs1"), dns::RecordType::kTxt, false);
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  query = dns::make_query(2, *dns::DnsName::parse("deadbeef.wrong"),
                          dns::RecordType::kTxt, false);
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  query = dns::make_query(3, *dns::DnsName::parse("deadbeef.ncs1"),
                          dns::RecordType::kA, false);
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  query = dns::make_query(4, *dns::DnsName::parse("a.deadbeef.ncs1"),
                          dns::RecordType::kTxt, false);
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  // Short hex label.
  query = dns::make_query(5, *dns::DnsName::parse("beef.ncs1"),
                          dns::RecordType::kTxt, false);
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  // EDNS is outside the profile.
  query = dns::make_query(
      6, *dns::DnsName::parse("deadbeef.ncs1"), dns::RecordType::kTxt, false,
      dns::EcsOption::for_query(*net::Prefix::parse("10.0.0.0/24")));
  EXPECT_EQ(formerr_of(query), ParseStatus::kFormErr);
  // No questions at all.
  dns::DnsMessage empty;
  empty.header.id = 8;
  EXPECT_EQ(formerr_of(empty), ParseStatus::kFormErr);
  EXPECT_EQ(view.id, 8);

  // A response is not a query: dropped, never answered.
  query = dns::make_query(7, *dns::DnsName::parse("deadbeef.ncs1"),
                          dns::RecordType::kTxt, false);
  query.header.qr = true;
  EXPECT_EQ(formerr_of(query), ParseStatus::kDrop);
  // DNS-invalid bytes: dropped.
  EXPECT_EQ(netsvc::parse_query(std::vector<std::uint8_t>{0xFF, 0x00}, &view),
            ParseStatus::kDrop);
  net::Rng rng(0x6A6A);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(96));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    (void)netsvc::parse_query(garbage, &view);  // must not crash
  }
}

TEST(NetsvcProtocol, SeedCorpusReplays) {
  // Every checked-in fuzz_netsvc seed must parse without crashing, and
  // the accepted ones must survive the full answer path (the same
  // properties the harness asserts, kept green as a regression suite).
  const std::filesystem::path dir = NETCLIENTS_NETSVC_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t seeds = 0, accepted = 0;
  dns::WireArena arena;
  QueryView query;
  ResponseView response;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seeds;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<std::uint8_t> wire{std::istreambuf_iterator<char>(in), {}};
    SCOPED_TRACE(entry.path().filename().string());
    if (netsvc::parse_query(wire, &query) != ParseStatus::kOk) continue;
    ++accepted;
    std::vector<serve::LookupResult> results(query.addrs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      results[i] = sample_result(i);
    }
    const auto reply = netsvc::encode_response(query, results, arena);
    ASSERT_TRUE(netsvc::parse_response(reply, &response));
    EXPECT_EQ(response.id, query.id);
    EXPECT_EQ(response.results, results);
  }
  EXPECT_GE(seeds, 8u) << "seed corpus went missing";
  EXPECT_GE(accepted, 3u) << "corpus lost its valid-query seeds";
}

// -------------------------------------------------------- stream framing

netsim::Datagram make_segment(net::Ipv4Addr src, net::Ipv4Addr dst,
                              std::uint32_t conn, std::uint32_t offset,
                              std::vector<std::uint8_t> bytes) {
  netsim::Datagram d;
  d.src = src;
  d.dst = dst;
  d.proto = netsim::Proto::kTcp;
  d.payload.reserve(8 + bytes.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    d.payload.push_back(static_cast<std::uint8_t>(conn >> shift));
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    d.payload.push_back(static_cast<std::uint8_t>(offset >> shift));
  }
  d.payload.insert(d.payload.end(), bytes.begin(), bytes.end());
  return d;
}

struct FrameLog {
  std::vector<std::vector<std::uint8_t>> frames;
  void attach(StreamSocket& socket) {
    socket.on_frame([this](net::Ipv4Addr, std::uint32_t,
                           std::span<const std::uint8_t> frame,
                           net::SimTime) {
      frames.emplace_back(frame.begin(), frame.end());
    });
  }
};

TEST(NetsvcStream, LengthPrefixSplitAcrossSegmentsReassembles) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"));
  FrameLog log;
  log.attach(receiver);
  const auto peer = addr("10.0.0.1");
  // Frame "xyz": stream bytes 00 03 78 79 7a, cut so the length prefix
  // itself straddles two segments.
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 9, 0, {0x00}), 0);
  EXPECT_TRUE(log.frames.empty());
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 9, 1, {0x03, 'x'}), 0);
  EXPECT_TRUE(log.frames.empty());
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 9, 3, {'y', 'z'}), 0);
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0], (std::vector<std::uint8_t>{'x', 'y', 'z'}));
  EXPECT_EQ(receiver.stats().frames_in, 1u);
  EXPECT_EQ(receiver.stats().segments_in, 3u);
}

TEST(NetsvcStream, ZeroLengthFramesAreSkippedAndCounted) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"));
  FrameLog log;
  log.attach(receiver);
  // Two zero-length frames, then a real one, in a single segment.
  receiver.ingest(make_segment(addr("10.0.0.1"), addr("10.0.0.2"), 1, 0,
                               {0, 0, 0, 0, 0x00, 0x02, 'h', 'i'}),
                  0);
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0], (std::vector<std::uint8_t>{'h', 'i'}));
  EXPECT_EQ(receiver.stats().zero_frames, 2u);
}

TEST(NetsvcStream, OversizeFrameDeclarationResetsTheConnection) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"), StreamOptions{.max_frame = 16});
  FrameLog log;
  log.attach(receiver);
  const auto peer = addr("10.0.0.1");
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 3, 0, {0x00, 0x11}), 0);
  EXPECT_EQ(receiver.stats().oversize_frames, 1u);
  EXPECT_EQ(receiver.stats().resets, 1u);
  // The connection's state is gone: its continuation is now an orphan.
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 3, 2, {'a'}), 0);
  EXPECT_EQ(receiver.stats().orphan_segments, 1u);
  EXPECT_TRUE(log.frames.empty());
}

TEST(NetsvcStream, MidFrameBlackholeSkipsAndCountsWithoutHanging) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"));
  FrameLog log;
  log.attach(receiver);
  const auto peer = addr("10.0.0.1");
  // A 6-byte frame whose tail segment never arrives (blackholed link).
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 4, 0,
                               {0x00, 0x06, 'a', 'b'}),
                  0);
  EXPECT_TRUE(log.frames.empty());  // parked mid-frame, not an error
  // A fresh connection from the same peer completes normally.
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 5, 0,
                               {0x00, 0x02, 'o', 'k'}),
                  1);
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(receiver.stats().resets, 0u);
  // The stalled stream eventually jumps (its lost middle never retransmits
  // on this bus): the gap resets it, skip-and-count.
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 4, 9, {'z'}), 2);
  EXPECT_EQ(receiver.stats().resets, 1u);
  EXPECT_EQ(log.frames.size(), 1u);
}

TEST(NetsvcStream, ReassemblyStateIsBoundedWithFifoEviction) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"),
                        StreamOptions{.max_connections = 2});
  FrameLog log;
  log.attach(receiver);
  const auto peer = addr("10.0.0.1");
  // Three parked half-frames: the third evicts the first.
  for (std::uint32_t conn = 1; conn <= 3; ++conn) {
    receiver.ingest(make_segment(peer, addr("10.0.0.2"), conn, 0, {0x00}), 0);
  }
  EXPECT_EQ(receiver.stats().evicted, 1u);
  // Conn 1 is gone (orphan); conn 3 still completes.
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 1, 1, {0x01, 'q'}), 1);
  EXPECT_EQ(receiver.stats().orphan_segments, 1u);
  receiver.ingest(make_segment(peer, addr("10.0.0.2"), 3, 1, {0x01, 'w'}), 1);
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0], (std::vector<std::uint8_t>{'w'}));
}

TEST(NetsvcStream, SendFrameSegmentsAndReassemblesOverTheBus) {
  netsim::MessageBus bus;
  StreamSocket receiver(bus, addr("10.0.0.2"));
  FrameLog log;
  log.attach(receiver);
  bus.attach(addr("10.0.0.2"),
             [&](const netsim::Datagram& d, net::SimTime now) {
               receiver.ingest(d, now);
             });
  // MSS of 3 stream bytes: a 10-byte frame becomes 4 segments.
  StreamSocket sender(bus, addr("10.0.0.1"),
                      StreamOptions{.segment_bytes = 3});
  const std::vector<std::uint8_t> frame = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  sender.send_frame(addr("10.0.0.2"), 42, frame, 0, 0.01);
  EXPECT_EQ(sender.stats().segments_out, 4u);
  bus.run_until(1.0);
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0], frame);
}

// ------------------------------------------------------------- end to end

class NetsvcSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(ScenarioBuilder()
                                 .scale_denominator(kScale)
                                 .epochs(2)
                                 .build());
    epochs_ =
        new std::vector<core::snapshot::EpochRecord>(scenario_->run_epochs());
  }
  static void TearDownTestSuite() {
    delete epochs_;
    delete scenario_;
    epochs_ = nullptr;
    scenario_ = nullptr;
  }

  static std::span<const core::snapshot::EpochRecord> chain() {
    return std::span<const core::snapshot::EpochRecord>(*epochs_);
  }
  static core::snapshot::EpochRecord rekeyed(std::size_t i,
                                             std::uint32_t id) {
    core::snapshot::EpochRecord record = (*epochs_)[i % epochs_->size()];
    record.epoch_id = id;
    return record;
  }

  /// One fully wired service + bus + server + client.
  struct World {
    netsim::MessageBus bus;
    serve::Service service;
    std::unique_ptr<Server> server;
    std::unique_ptr<Client> client;

    World(std::span<const core::snapshot::EpochRecord> epochs,
          ClientOptions client_options = {},
          ServerOptions server_options = {},
          netsim::FaultConfig faults = {}) {
      service.publish(epochs);
      if (faults.enabled()) bus.set_faults(std::move(faults));
      server = std::make_unique<Server>(bus, service, addr("10.0.0.1"),
                                        server_options);
      client = std::make_unique<Client>(bus, addr("10.0.0.2"),
                                        addr("10.0.0.1"), client_options);
    }
  };

  /// Direct (no-network) expectation: one pinned snapshot, serial lookup.
  static std::vector<serve::LookupResult> direct(
      const serve::Service& service,
      std::span<const net::Ipv4Addr> queries) {
    return service.acquire()->lookup_many(queries, 1);
  }

 private:
  static Scenario* scenario_;
  static std::vector<core::snapshot::EpochRecord>* epochs_;
};

Scenario* NetsvcSuite::scenario_ = nullptr;
std::vector<core::snapshot::EpochRecord>* NetsvcSuite::epochs_ = nullptr;

TEST_F(NetsvcSuite, UdpResultsAreByteIdenticalToDirectLookupsAtAnyThreads) {
  const auto queries = make_queries(1024, 0x11D9);
  std::vector<serve::LookupResult> expected;
  std::vector<std::uint64_t> request_counts;
  std::vector<std::vector<serve::LookupResult>> runs;
  for (int threads : {1, 8}) {
    runs.push_back(with_threads(threads, [&] {
      World world(chain());
      const auto got = world.client->lookup_many(queries);
      EXPECT_EQ(world.client->stats().failed_chunks, 0u);
      EXPECT_EQ(world.client->stats().tcp_queries, 0u);
      EXPECT_GT(world.client->stats().udp_queries, 0u);
      EXPECT_EQ(world.server->stats().responses,
                world.client->stats().responses);
      request_counts.push_back(world.client->stats().udp_queries);
      if (expected.empty()) expected = direct(world.service, queries);
      return got;
    }));
  }
  EXPECT_EQ(runs[0], expected);
  EXPECT_EQ(runs[1], expected);
  EXPECT_EQ(request_counts[0], request_counts[1]);
}

TEST_F(NetsvcSuite, TcpResultsAreByteIdenticalToDirectLookupsAtAnyThreads) {
  const auto queries = make_queries(1024, 0x7C97);
  ClientOptions options;
  options.transport = googledns::Transport::kTcp;
  std::vector<serve::LookupResult> expected;
  std::vector<std::vector<serve::LookupResult>> runs;
  for (int threads : {1, 8}) {
    runs.push_back(with_threads(threads, [&] {
      World world(chain(), options);
      const auto got = world.client->lookup_many(queries);
      EXPECT_EQ(world.client->stats().failed_chunks, 0u);
      EXPECT_EQ(world.client->stats().udp_queries, 0u);
      EXPECT_GT(world.client->stats().tcp_queries, 0u);
      EXPECT_GT(world.server->stream_stats().frames_out, 0u);
      if (expected.empty()) expected = direct(world.service, queries);
      return got;
    }));
  }
  EXPECT_EQ(runs[0], expected);
  EXPECT_EQ(runs[1], expected);
}

TEST_F(NetsvcSuite, LossWithRetriesStaysByteIdenticalAtAnyThreads) {
  const auto queries = make_queries(512, 0x105E);
  ClientOptions options;
  options.retry.max_attempts = 8;
  netsim::FaultConfig faults;
  faults.seed = 0xFA177;
  faults.loss_probability = 0.10;
  faults.jitter_max_seconds = 0.002;
  std::vector<serve::LookupResult> expected;
  struct Tally {
    std::uint64_t timeouts, retries, udp_queries;
  };
  std::vector<Tally> tallies;
  std::vector<std::vector<serve::LookupResult>> runs;
  for (int threads : {1, 8}) {
    runs.push_back(with_threads(threads, [&] {
      World world(chain(), options, {}, faults);
      const auto got = world.client->lookup_many(queries);
      const auto& stats = world.client->stats();
      EXPECT_EQ(stats.failed_chunks, 0u)
          << "retry budget must absorb this loss rate";
      EXPECT_GT(stats.timeouts, 0u) << "faults must actually bite";
      tallies.push_back({stats.timeouts, stats.retries, stats.udp_queries});
      if (expected.empty()) expected = direct(world.service, queries);
      return got;
    }));
  }
  // Results byte-identical to the no-network truth, at both thread
  // counts; the loss/retry dance itself replays event for event.
  EXPECT_EQ(runs[0], expected);
  EXPECT_EQ(runs[1], expected);
  EXPECT_EQ(tallies[0].timeouts, tallies[1].timeouts);
  EXPECT_EQ(tallies[0].retries, tallies[1].retries);
  EXPECT_EQ(tallies[0].udp_queries, tallies[1].udp_queries);
}

TEST_F(NetsvcSuite, TruncatedUdpResponseEscalatesToTcpAndCompletes) {
  // 16 questions per message: the query (192 bytes) fits UDP, but the
  // full response (784 bytes) cannot — the server answers TC=1 and the
  // client must finish the batch over TCP.
  const auto queries = make_queries(64, 0x77C);
  ClientOptions options;
  options.batch_per_message = 16;
  World world(chain(), options);
  const auto got = world.client->lookup_many(queries);
  EXPECT_EQ(got, direct(world.service, queries));

  const auto& stats = world.client->stats();
  EXPECT_EQ(world.client->transport(), googledns::Transport::kTcp);
  EXPECT_EQ(stats.truncated_seen, 1u);  // first chunk trips it...
  EXPECT_EQ(stats.escalations, 1u);     // ...switching is sticky
  EXPECT_EQ(stats.udp_queries, 1u);
  EXPECT_EQ(stats.tcp_queries, 4u);  // the re-ask + the remaining 3 chunks
  EXPECT_EQ(stats.failed_chunks, 0u);
  EXPECT_EQ(world.server->stats().truncated, 1u);
}

TEST_F(NetsvcSuite, OversizeQueriesRideTcpWithoutFlippingTheTransport) {
  // 64 questions = a 720-byte query: the bus would truncate it as UDP,
  // so the client sends those chunks over TCP but stays on UDP.
  const auto queries = make_queries(128, 0x0517E);
  ClientOptions options;
  options.batch_per_message = 64;
  World world(chain(), options);
  const auto got = world.client->lookup_many(queries);
  EXPECT_EQ(got, direct(world.service, queries));
  EXPECT_EQ(world.client->stats().oversize_queries, 2u);
  EXPECT_EQ(world.client->stats().udp_queries, 0u);
  EXPECT_EQ(world.client->transport(), googledns::Transport::kUdp);
}

TEST_F(NetsvcSuite, ServiceWindowStallsDeterministically) {
  // Two queries land at the same instant with a one-slot window: the
  // second must issue at the first's completion, never in parallel.
  ServerOptions server_options;
  server_options.window = 1;
  server_options.base_service_seconds = 0.001;
  server_options.per_query_service_seconds = 0;
  server_options.reply_latency = 0.01;
  World world(chain(), {}, server_options);
  dns::WireArena arena;
  const auto q = make_queries(2, 0x51A11);
  std::vector<double> arrivals;
  const auto observer = addr("10.0.0.9");
  world.bus.attach(observer,
                   [&](const netsim::Datagram&, net::SimTime now) {
                     arrivals.push_back(now);
                   });
  for (std::size_t i = 0; i < 2; ++i) {
    const auto wire = netsvc::encode_query(
        static_cast<std::uint16_t>(i + 1),
        std::span<const net::Ipv4Addr>(&q[i], 1), arena);
    world.bus.send(observer, addr("10.0.0.1"), netsim::Proto::kUdp,
                   {wire.begin(), wire.end()}, 0, 0.01);
  }
  world.bus.run_until(10.0);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.021, 1e-9);  // 0.01 + service 0.001 + 0.01
  EXPECT_NEAR(arrivals[1], 0.022, 1e-9);  // queued behind the busy slot
  EXPECT_EQ(world.server->stats().window_stalls, 1u);
}

TEST_F(NetsvcSuite, PerConnectionBackpressureDropsExcessRequests) {
  ServerOptions server_options;
  server_options.per_conn_window = 1;
  World world(chain(), {}, server_options);
  dns::WireArena arena;
  const auto q = make_queries(2, 0xBACC);
  StreamSocket requester(world.bus, addr("10.0.0.9"));
  FrameLog log;
  log.attach(requester);
  world.bus.attach(addr("10.0.0.9"),
                   [&](const netsim::Datagram& d, net::SimTime now) {
                     requester.ingest(d, now);
                   });
  // Two requests on ONE connection arriving back to back: the second
  // finds the first's reply still in flight and is dropped.
  for (std::size_t i = 0; i < 2; ++i) {
    const auto wire = netsvc::encode_query(
        static_cast<std::uint16_t>(i + 1),
        std::span<const net::Ipv4Addr>(&q[i], 1), arena);
    requester.send_frame(addr("10.0.0.1"), 5, wire, 0, 0.01);
  }
  world.bus.run_until(10.0);
  EXPECT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(world.server->stats().backpressure_dropped, 1u);
  EXPECT_EQ(world.server->stats().responses, 1u);
}

TEST_F(NetsvcSuite, MalformedAndNonProfileQueriesAreCountedNotAnswered) {
  World world(chain());
  std::vector<std::vector<std::uint8_t>> replies;
  const auto observer = addr("10.0.0.9");
  world.bus.attach(observer,
                   [&](const netsim::Datagram& d, net::SimTime) {
                     replies.push_back(d.payload);
                   });
  // DNS garbage: dropped silently.
  world.bus.send(observer, addr("10.0.0.1"), netsim::Proto::kUdp,
                 {0xDE, 0xAD}, 0, 0.01);
  // DNS-valid but non-NCS1: explicit FORMERR.
  const auto foreign = dns::encode(dns::make_query(
      0x4242, *dns::DnsName::parse("www.example.com"), dns::RecordType::kA,
      true));
  world.bus.send(observer, addr("10.0.0.1"), netsim::Proto::kUdp, foreign, 0,
                 0.01);
  world.bus.run_until(10.0);
  EXPECT_EQ(world.server->stats().malformed, 1u);
  EXPECT_EQ(world.server->stats().formerr, 1u);
  ASSERT_EQ(replies.size(), 1u);
  ResponseView response;
  ASSERT_TRUE(netsvc::parse_response(replies[0], &response));
  EXPECT_EQ(response.id, 0x4242);
  EXPECT_EQ(response.rcode, dns::RCode::kFormErr);
}

TEST_F(NetsvcSuite, LivePublisherChurnNeverTearsABatch) {
  // The tsan half: a real publisher thread swaps epochs while the client
  // reads through the wire path. Every chunk must be answered entirely
  // by one published version — a batch never sees a half-swapped state.
  World world(chain());
  std::mutex mu;
  std::vector<serve::SnapshotHandle> versions;
  versions.push_back(world.service.acquire());
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (std::uint32_t i = 0; i < 8; ++i) {
      world.service.publish(rekeyed(i % 2, 100 + i));
      {
        std::lock_guard<std::mutex> lock(mu);
        versions.push_back(world.service.acquire());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
  });

  std::vector<std::vector<net::Ipv4Addr>> chunks;
  std::vector<std::vector<serve::LookupResult>> answers;
  std::size_t round = 0;
  while ((!done.load() || round < 64) && round < 4096) {
    chunks.push_back(make_queries(8, 0xC0DE + round));
    answers.push_back(world.client->lookup_many(chunks.back()));
    ++round;
  }
  publisher.join();
  ASSERT_EQ(world.client->stats().failed_chunks, 0u);

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    bool matched = false;
    for (const auto& handle : versions) {
      if (handle->lookup_many(chunks[i], 1) == answers[i]) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "chunk " << i
                         << " matches no published version";
  }
}

}  // namespace
}  // namespace netclients
