// Zero-copy trace ingestion suite (labels: determinism, tsan): the
// TraceView decoder must accept byte-identical record prefixes as the
// materializing readers on clean, truncated, and corrupted traces, and
// ChromiumCounter::process_view must produce byte-identical results to
// the materializing process() at every REPRO_THREADS and chunk size.
// Fuzz cases mirror test_fuzz_wire's TraceFuzz: random mutations must
// never crash the view and never read past the mapping (decode-only,
// like TraceFuzz — the parity cases use structural mutations whose
// surviving records are still well-formed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/chromium/chromium.h"
#include "core/exec/exec.h"
#include "net/rng.h"
#include "roots/root_server.h"
#include "roots/trace.h"
#include "roots/trace_view.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

constexpr double kSampleRate = 1.0 / 4;

// One sampled DITL capture shared by every case in this (batch) binary:
// the world build dominates, so generate once.
struct TraceFixture {
  std::string path = "trace_view_fixture.trace";
  std::vector<roots::TraceRecord> records;

  TraceFixture() {
    sim::WorldConfig config;
    config.scale = 1.0 / 8192;
    const sim::World world = sim::World::generate(config);
    const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
    sim::DitlOptions ditl;
    ditl.sample_rate = kSampleRate;
    sim::generate_ditl(world, roots, ditl,
                       [&](const roots::TraceRecord& rec) {
                         records.push_back(rec);
                       });
    EXPECT_TRUE(roots::TraceFile::write(path, records));
  }
};

const TraceFixture& fixture() {
  static TraceFixture* f = new TraceFixture;
  return *f;
}

class CleanupEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    std::filesystem::remove(fixture().path);
  }
};
const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new CleanupEnv);

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Bit-identical comparison: the two scan paths promise the same integers
// and the same (integer × scale) doubles, not approximations.
void expect_identical(const ChromiumResult& a, const ChromiumResult& b) {
  EXPECT_EQ(a.records_scanned, b.records_scanned);
  EXPECT_EQ(a.signature_matches, b.signature_matches);
  EXPECT_EQ(a.rejected_collisions, b.rejected_collisions);
  ASSERT_EQ(a.probes_by_resolver.size(), b.probes_by_resolver.size());
  for (const auto& [addr, count] : a.probes_by_resolver) {
    const auto it = b.probes_by_resolver.find(addr);
    ASSERT_NE(it, b.probes_by_resolver.end()) << "resolver " << addr;
    EXPECT_EQ(count, it->second) << "resolver " << addr;
  }
}

// --------------------------------------------------------- view decoding

TEST(TraceView, CursorMaterializesTheExactRecordStream) {
  const auto& f = fixture();
  const auto view = roots::TraceView::open(f.path);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->declared_count(), f.records.size());

  auto cursor = view->cursor();
  roots::TraceRecordRef ref;
  std::size_t i = 0;
  while (cursor.next(&ref)) {
    ASSERT_LT(i, f.records.size());
    EXPECT_EQ(ref.materialize(), f.records[i]);
    ++i;
  }
  EXPECT_EQ(i, f.records.size());

  const auto stats = view->validate();
  EXPECT_EQ(stats.records_read, f.records.size());
  EXPECT_EQ(stats.records_skipped, 0u);
  EXPECT_FALSE(stats.truncated);
}

TEST(TraceView, FieldAccessorsMatchMaterializedFields) {
  const auto& f = fixture();
  const auto view = roots::TraceView::open(f.path);
  ASSERT_TRUE(view);
  auto cursor = view->cursor();
  roots::TraceRecordRef ref;
  std::size_t i = 0;
  while (cursor.next(&ref) && i < 64) {
    const roots::TraceRecord& want = f.records[i];
    EXPECT_EQ(ref.source(), want.source);
    EXPECT_EQ(ref.qtype(), want.qtype);
    EXPECT_EQ(ref.timestamp(), want.timestamp);
    EXPECT_EQ(ref.root_letter(), want.root_letter);
    ASSERT_EQ(ref.label_count(), want.qname.labels().size());
    std::size_t li = 0;
    ref.for_each_label([&](std::string_view label) {
      EXPECT_EQ(label, want.qname.labels()[li]);
      EXPECT_EQ(ref.label(li), want.qname.labels()[li]);
      ++li;
    });
    ++i;
  }
}

TEST(TraceView, MmapAndBufferBackingsAgree) {
  const auto& f = fixture();
  const auto mapped = roots::TraceView::open(
      f.path, roots::TraceView::Backing::kAuto);
  const auto buffered = roots::TraceView::open(
      f.path, roots::TraceView::Backing::kBuffer);
  ASSERT_TRUE(mapped);
  ASSERT_TRUE(buffered);
  EXPECT_FALSE(buffered->mapped());
  EXPECT_EQ(mapped->payload_bytes(), buffered->payload_bytes());

  const ChromiumCounter counter({.sample_rate = kSampleRate});
  expect_identical(counter.process_view(*mapped),
                   counter.process_view(*buffered));
}

TEST(TraceView, OpenRejectsExactlyWhatTolerantReadRejects) {
  // Missing file, short file, bad magic, truncated count header.
  const std::string path = "trace_view_open.bin";
  const std::vector<std::vector<std::uint8_t>> bad = {
      {},
      {'N'},
      {'N', 'C', 'D', '1', 0, 0, 0},                    // count cut short
      {'X', 'C', 'D', '1', 0, 0, 0, 0, 0, 0, 0, 0},     // wrong magic
  };
  std::vector<roots::TraceRecord> loaded;
  EXPECT_FALSE(roots::TraceView::open("no_such_trace_file.bin"));
  EXPECT_FALSE(roots::TraceFile::read_tolerant("no_such_trace_file.bin",
                                               &loaded));
  for (const auto& bytes : bad) {
    spit(path, bytes);
    EXPECT_FALSE(roots::TraceView::open(path)) << bytes.size();
    EXPECT_FALSE(roots::TraceFile::read_tolerant(path, &loaded))
        << bytes.size();
  }
  // A header alone (zero records) is a valid, empty trace for both.
  spit(path, {'N', 'C', 'D', '1', 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_TRUE(roots::TraceView::open(path));
  EXPECT_TRUE(roots::TraceFile::read_tolerant(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ chunker

TEST(RecordChunker, CutsBoundariesByRecordCountAlone) {
  exec::RecordChunker chunker(4);
  for (std::size_t i = 0; i < 10; ++i) chunker.note(i * 10);
  EXPECT_EQ(chunker.records(), 10u);
  const auto chunks = chunker.finish(105);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 40u);
  EXPECT_EQ(chunks[0].first_record, 0u);
  EXPECT_EQ(chunks[0].records, 4u);
  EXPECT_EQ(chunks[1].begin, 40u);
  EXPECT_EQ(chunks[1].end, 80u);
  EXPECT_EQ(chunks[1].records, 4u);
  EXPECT_EQ(chunks[2].begin, 80u);
  EXPECT_EQ(chunks[2].end, 105u);
  EXPECT_EQ(chunks[2].first_record, 8u);
  EXPECT_EQ(chunks[2].records, 2u);
}

TEST(RecordChunker, EmptyStreamAndZeroChunkSize) {
  exec::RecordChunker empty(4);
  EXPECT_TRUE(empty.finish(0).empty());
  exec::RecordChunker degenerate(0);  // treated as 1 record per chunk
  degenerate.note(0);
  degenerate.note(7);
  const auto chunks = degenerate.finish(20);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].end, 7u);
  EXPECT_EQ(chunks[1].end, 20u);
}

// ----------------------------------------------------- signature matcher

TEST(ByteMatcher, AgreesWithCanonicalMatcherOnEveryLabelShape) {
  // Random labels over a charset with letters of both cases, digits,
  // hyphens: the byte predicate on the raw label must equal the DnsName
  // predicate on the canonical (lowercased) form.
  const std::string charset = "abcXYZmQ019-_";
  net::Rng rng(0xBEEF);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t len = 1 + rng.below(20);
    std::string label;
    for (std::size_t i = 0; i < len; ++i) {
      label.push_back(charset[rng.below(charset.size())]);
    }
    const auto name = dns::DnsName::from_labels({label});
    ASSERT_TRUE(name.has_value());
    EXPECT_EQ(matches_chromium_signature_bytes(label),
              matches_chromium_signature(*name))
        << label;
  }
}

TEST(ByteMatcher, UppercaseRawBytesCountLikeTheirCanonicalForm) {
  // Hand-craft a trace whose raw label bytes are mixed-case — DnsName
  // never writes these, but the format doesn't forbid them, and the
  // materializing path lowercases on read. Both scan paths must agree,
  // including the sketch keys (same name, different casing, same day
  // must collide with itself).
  const std::string path = "trace_view_case.bin";
  std::vector<std::uint8_t> bytes = {'N', 'C', 'D', '1'};
  const auto put = [&](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  const std::uint64_t count = 3;
  put(&count, 8);
  const char* labels[] = {"AbCdEfGh", "abcdefgh", "ABCDEFGH"};
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t source = 0x0A000001;
    const std::uint16_t qtype = 1;
    const double timestamp = 100.0 * i;
    put(&source, 4);
    bytes.push_back('a');
    put(&qtype, 2);
    put(&timestamp, 8);
    bytes.push_back(1);  // label count
    bytes.push_back(8);  // label length
    put(labels[i], 8);
  }
  spit(path, bytes);

  std::vector<roots::TraceRecord> loaded;
  ASSERT_TRUE(roots::TraceFile::read_tolerant(path, &loaded));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].qname.labels().front(), "abcdefgh");

  const auto view = roots::TraceView::open(path);
  ASSERT_TRUE(view);
  const ChromiumCounter counter;
  const ChromiumResult from_view = counter.process_view(*view);
  expect_identical(from_view, counter.process(loaded));
  EXPECT_EQ(from_view.signature_matches, 3u);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ scan parity

TEST(ViewParity, ByteIdenticalToMaterializingScanAtEveryThreadCount) {
  const auto& f = fixture();
  const ChromiumCounter counter({.sample_rate = kSampleRate});
  const ChromiumResult reference = counter.process(f.records);
  for (const char* threads : {"1", "2", "8"}) {
    SCOPED_TRACE(threads);
    ::setenv("REPRO_THREADS", threads, 1);
    const auto view = roots::TraceView::open(f.path);
    ASSERT_TRUE(view);
    const ChromiumResult scanned = counter.process_view(*view);
    expect_identical(scanned, reference);
    EXPECT_EQ(scanned.records_skipped, 0u);
  }
  ::unsetenv("REPRO_THREADS");
}

TEST(ViewParity, ChunkSizeDoesNotChangeTheResult) {
  const auto& f = fixture();
  const auto view = roots::TraceView::open(f.path);
  ASSERT_TRUE(view);
  ChromiumOptions options;
  options.sample_rate = kSampleRate;
  const ChromiumResult reference = ChromiumCounter(options).process(f.records);
  for (const std::size_t chunk : {std::size_t{1} << 4, std::size_t{1} << 9,
                                  std::size_t{1} << 20}) {
    SCOPED_TRACE(chunk);
    options.chunk_records = chunk;
    expect_identical(ChromiumCounter(options).process_view(*view), reference);
  }
}

TEST(ViewParity, ProcessFileRoutesThroughTheViewPath) {
  const auto& f = fixture();
  const ChromiumCounter counter({.sample_rate = kSampleRate});
  const auto from_file = counter.process_file(f.path);
  ASSERT_TRUE(from_file);
  expect_identical(*from_file, counter.process(f.records));
  EXPECT_FALSE(counter.process_file("no_such_trace_file.bin"));
}

// Structural mutations only (truncation, count inflation, length-byte
// damage): surviving records stay well-formed, so the parity check can
// run the full pipeline on both paths.
TEST(ViewParity, DamagedTailsSkipAndCountIdenticallyToTolerantReader) {
  const auto& f = fixture();
  const std::vector<std::uint8_t> clean = slurp(f.path);
  ASSERT_GT(clean.size(), 200u);
  const std::string path = "trace_view_damaged.bin";

  std::vector<std::vector<std::uint8_t>> mutants;
  // Truncations: mid-header of an early record, mid-label, one byte shy.
  for (const std::size_t cut : {clean.size() / 2, clean.size() / 3 + 5,
                                clean.size() - 1, std::size_t{12 + 7}}) {
    mutants.emplace_back(clean.begin(), clean.begin() + cut);
  }
  {
    // Corrupt count: header declares more records than the file holds.
    auto inflated = clean;
    std::uint64_t declared;
    std::memcpy(&declared, inflated.data() + 4, 8);
    declared += 5;
    std::memcpy(inflated.data() + 4, &declared, 8);
    mutants.push_back(std::move(inflated));
  }
  {
    // Ragged label: a length byte in the middle claims 63 bytes the
    // record doesn't have, desyncing everything after it.
    auto ragged = clean;
    ragged[ragged.size() / 2] = 63;
    mutants.push_back(std::move(ragged));
  }

  for (std::size_t m = 0; m < mutants.size(); ++m) {
    SCOPED_TRACE(m);
    spit(path, mutants[m]);

    std::vector<roots::TraceRecord> loaded;
    roots::TraceFile::ReadStats stats;
    ASSERT_TRUE(roots::TraceFile::read_tolerant(path, &loaded, &stats));

    const auto view = roots::TraceView::open(path);
    ASSERT_TRUE(view);
    const auto vstats = view->validate();
    EXPECT_EQ(vstats.records_read, stats.records_read);
    EXPECT_EQ(vstats.records_skipped, stats.records_skipped);
    EXPECT_EQ(vstats.truncated, stats.truncated);

    const ChromiumCounter counter({.sample_rate = kSampleRate});
    const ChromiumResult scanned = counter.process_view(*view);
    expect_identical(scanned, counter.process(loaded));
    EXPECT_EQ(scanned.records_skipped, stats.records_skipped);
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------ fuzz

// Mirror of test_fuzz_wire's TraceFuzz, pointed at the view: random byte
// flips and truncations must never crash, never read past the mapping
// (tsan/asan-visible), and must keep the view's accept/skip behavior in
// lockstep with the materializing tolerant reader. Decode-only, like
// TraceFuzz: flipped bytes can forge non-finite timestamps, which the
// scan (either path) would cast — same reason TraceFuzz never calls
// process().
class ViewFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewFuzz, MutatedTracesNeverCrashAndMatchTolerantReader) {
  net::Rng rng(GetParam());
  const std::string path =
      "trace_view_fuzz_" + std::to_string(GetParam()) + ".bin";
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<roots::TraceRecord> records(1 + rng.below(6));
    for (auto& rec : records) {
      rec.source = net::Ipv4Addr(static_cast<std::uint32_t>(rng()));
      rec.qname = *dns::DnsName::parse(
          rng.bernoulli(0.5) ? "qpwoeiruty" : "www.example.com");
      rec.timestamp = static_cast<double>(rng.below(1000));
    }
    ASSERT_TRUE(roots::TraceFile::write(path, records));
    auto bytes = slurp(path);
    const int mutations = 1 + static_cast<int>(rng.below(5));
    for (int m = 0; m < mutations && !bytes.empty(); ++m) {
      if (rng.bernoulli(0.3)) {
        bytes.resize(rng.below(bytes.size() + 1));
      } else {
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
    }
    spit(path, bytes);

    std::vector<roots::TraceRecord> loaded;
    roots::TraceFile::ReadStats stats;
    const bool tolerant_ok =
        roots::TraceFile::read_tolerant(path, &loaded, &stats);
    for (const auto backing : {roots::TraceView::Backing::kAuto,
                               roots::TraceView::Backing::kBuffer}) {
      const auto view = roots::TraceView::open(path, backing);
      ASSERT_EQ(view.has_value(), tolerant_ok);
      if (!view) continue;
      const auto vstats = view->validate();
      EXPECT_EQ(vstats.records_read, stats.records_read);
      EXPECT_EQ(vstats.records_skipped, stats.records_skipped);
      EXPECT_EQ(vstats.truncated, stats.truncated);
      // The surviving prefix must materialize to the same records.
      auto cursor = view->cursor();
      roots::TraceRecordRef ref;
      std::size_t i = 0;
      while (cursor.next(&ref)) {
        ASSERT_LT(i, loaded.size());
        EXPECT_EQ(ref.materialize(), loaded[i]);
        ++i;
      }
      EXPECT_EQ(i, loaded.size());
    }
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewFuzz,
                         ::testing::Values(0x91, 0x92, 0x93, 0x94));

}  // namespace
}  // namespace netclients::core
