// Property suite for the Table 2 mechanism: the relationship between the
// scopes discovered from the authoritative (epoch 0) and the response
// scopes Google Public DNS returns during the campaign (epoch 1), across
// drift configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dnssrv/authoritative.h"
#include "googledns/google_dns.h"
#include "net/rng.h"

namespace netclients {
namespace {

class SaturatedActivity final : public googledns::ClientActivityModel {
 public:
  double arrival_rate(anycast::PopId, const dns::DnsName&,
                      net::Prefix) const override {
    return 5.0;  // cache always warm: every probe that can hit, hits
  }
};

struct DriftFixture {
  explicit DriftFixture(double drift)
      : pops(anycast::PopTable::google_default()), catchment(&pops, 42) {
    dnssrv::ZoneConfig zone;
    zone.name = *dns::DnsName::parse("www.example.com");
    zone.ttl_seconds = 300;
    zone.min_scope = 18;
    zone.max_scope = 24;
    zone.scope_drift_probability = drift;
    zone.seed = 1234;
    auth.add_zone(zone);
    gdns = std::make_unique<googledns::GooglePublicDns>(
        &pops, &catchment, &auth, googledns::GoogleDnsConfig{}, &activity);
  }

  anycast::PopTable pops;
  anycast::CatchmentModel catchment;
  dnssrv::AuthoritativeServer auth;
  SaturatedActivity activity;
  std::unique_ptr<googledns::GooglePublicDns> gdns;
  const dns::DnsName domain = *dns::DnsName::parse("www.example.com");
};

struct DriftStats {
  int probes = 0;
  int hits = 0;
  int exact = 0;
  int within2 = 0;
};

DriftStats run_discovery_then_probe(DriftFixture& f, std::uint64_t seed,
                                    int samples) {
  DriftStats stats;
  net::Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    // Scope discovery against the authoritative (epoch 0).
    const net::Prefix slash24(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng())), 24);
    const std::uint8_t discovered = *f.auth.scope_for(f.domain, slash24, 0);
    const net::Prefix query = slash24.widen_to(discovered);
    // Campaign probe (epoch 1 inside the Google front end).
    ++stats.probes;
    for (int attempt = 0; attempt < 5; ++attempt) {
      const auto probe =
          f.gdns->probe(0, f.domain, query, 1e5 + i * 11.0,
                        googledns::Transport::kTcp, 0, attempt);
      if (!probe.cache_hit) continue;
      ++stats.hits;
      const int diff = std::abs(static_cast<int>(query.length()) -
                                static_cast<int>(probe.return_scope));
      stats.exact += diff == 0;
      stats.within2 += diff <= 2;
      break;
    }
  }
  return stats;
}

TEST(ScopeStability, NoDriftMeansAllExactAndAllHits) {
  DriftFixture f(0.0);
  const auto stats = run_discovery_then_probe(f, 1, 800);
  EXPECT_EQ(stats.hits, stats.probes);
  EXPECT_EQ(stats.exact, stats.hits);
}

TEST(ScopeStability, PaperLevelDriftKeepsMostScopesExact) {
  // With ~10% drift per scope block, Table 2's structure emerges: ~90% of
  // hits exact, nearly all within 2 bits.
  DriftFixture f(0.10);
  const auto stats = run_discovery_then_probe(f, 2, 1500);
  ASSERT_GT(stats.hits, 1000);
  const double exact = static_cast<double>(stats.exact) / stats.hits;
  const double within2 = static_cast<double>(stats.within2) / stats.hits;
  EXPECT_GT(exact, 0.85);
  EXPECT_LT(exact, 0.995);
  EXPECT_GT(within2, exact);
  EXPECT_GT(within2, 0.95);
}

TEST(ScopeStability, UpwardDriftCostsHitsNotCorrectness) {
  // When a scope drifts more specific than the discovered query scope, the
  // cached entries no longer cover the query's source prefix: the probe
  // misses (RFC 7871), it does not return a wrong scope.
  DriftFixture heavy(0.45);
  const auto stats = run_discovery_then_probe(heavy, 3, 1500);
  EXPECT_LT(stats.hits, stats.probes);  // some upward drift -> misses
  // All returned scopes are at most the query scope length (checked via
  // the within-2 accounting only counting hits).
  EXPECT_GE(stats.within2, 0);
}

TEST(ScopeStability, DriftMonotoneInProbability) {
  double previous_exact = 1.1;
  for (double drift : {0.02, 0.10, 0.30}) {
    DriftFixture f(drift);
    const auto stats = run_discovery_then_probe(f, 4, 1200);
    ASSERT_GT(stats.hits, 0);
    const double exact = static_cast<double>(stats.exact) / stats.hits;
    EXPECT_LT(exact, previous_exact) << "drift " << drift;
    previous_exact = exact;
  }
}

TEST(ScopeStability, DiscoveryEpochIsStableAcrossCalls) {
  DriftFixture f(0.25);
  net::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const net::Prefix p(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                        24);
    EXPECT_EQ(*f.auth.scope_for(f.domain, p, 0),
              *f.auth.scope_for(f.domain, p, 0));
    EXPECT_EQ(*f.auth.scope_for(f.domain, p, 1),
              *f.auth.scope_for(f.domain, p, 1));
  }
}

}  // namespace
}  // namespace netclients
