// Tests for the synthetic-Internet generator: structural invariants of the
// address plan, AS/resolver wiring, activity rates, determinism, and the
// DITL trace generator's ground-truth accounting.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "roots/root_server.h"
#include "sim/activity.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::sim {
namespace {

const World& small_world() {
  static const World world = [] {
    WorldConfig config;
    config.scale = 1.0 / 1024;
    return World::generate(config);
  }();
  return world;
}

TEST(World, BlocksSortedAndUnique) {
  const World& w = small_world();
  for (std::size_t i = 1; i < w.blocks().size(); ++i) {
    EXPECT_LT(w.blocks()[i - 1].index, w.blocks()[i].index);
  }
}

TEST(World, EveryRoutedBlockBelongsToAnnouncingAs) {
  const World& w = small_world();
  for (const Slash24Block& block : w.blocks()) {
    if (!block.routed) continue;
    ASSERT_NE(block.as_index, Slash24Block::kNoAs);
    const AsEntry& as = w.ases()[block.as_index];
    bool inside = false;
    for (const net::Prefix& p : as.announced) {
      inside |= p.contains(net::Prefix::from_slash24_index(block.index));
    }
    EXPECT_TRUE(inside) << "block " << block.index << " outside its AS";
  }
}

TEST(World, Prefix2AsMatchesBlockOwnership) {
  const World& w = small_world();
  for (const Slash24Block& block : w.blocks()) {
    const auto match =
        w.prefix2as().longest_match(net::Ipv4Addr(block.index << 8));
    if (block.routed) {
      ASSERT_TRUE(match.has_value());
      EXPECT_EQ(*match->second, block.as_index);
    }
  }
}

TEST(World, AnnouncedPrefixesDoNotOverlapAcrossAses) {
  const World& w = small_world();
  std::vector<net::Prefix> all;
  for (const AsEntry& as : w.ases()) {
    all.insert(all.end(), as.announced.begin(), as.announced.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i - 1].overlaps(all[i]))
        << all[i - 1].to_string() << " overlaps " << all[i].to_string();
  }
}

TEST(World, UserTotalsMatchScaledCountries) {
  const World& w = small_world();
  double expected = 0;
  for (const CountryInfo& c : w.countries()) {
    expected += c.internet_users * w.config().scale;
  }
  // Hosting/content/transit weights divert ~2% into bot populations.
  EXPECT_NEAR(w.total_users(), expected, expected * 0.05);
}

TEST(World, UnroutedFractionRoughlyConfigured) {
  const World& w = small_world();
  double routed = 0, unrouted = 0;
  for (const Slash24Block& block : w.blocks()) {
    (block.routed ? routed : unrouted) += 1;
  }
  const double fraction = unrouted / (routed + unrouted);
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.45);
}

TEST(World, GoogleEgressOnePerActivePop) {
  const World& w = small_world();
  int google_endpoints = 0;
  std::set<anycast::PopId> pops_seen;
  for (const ResolverEndpoint& ep : w.resolver_endpoints()) {
    if (ep.owner_as == w.google_as()) {
      ++google_endpoints;
      EXPECT_TRUE(ep.sends_ecs);
      ASSERT_NE(ep.pop, anycast::kNoPop);
      pops_seen.insert(ep.pop);
    } else {
      EXPECT_FALSE(ep.sends_ecs);
    }
  }
  EXPECT_EQ(google_endpoints, 27);  // active PoPs
  EXPECT_EQ(pops_seen.size(), 27u);
}

TEST(World, ResolverEndpointsLiveInHostAsSpace) {
  const World& w = small_world();
  for (const ResolverEndpoint& ep : w.resolver_endpoints()) {
    const AsEntry& host = w.ases()[ep.host_as];
    bool inside = false;
    for (const net::Prefix& p : host.announced) {
      inside |= p.contains(ep.address);
    }
    EXPECT_TRUE(inside);
  }
}

TEST(World, SomeResolversAreOutsourcedToHosting) {
  WorldConfig config;
  config.scale = 1.0 / 256;
  config.resolver_outsourced_probability = 0.3;
  const World w = World::generate(config);
  int outsourced = 0;
  for (const ResolverEndpoint& ep : w.resolver_endpoints()) {
    outsourced += ep.host_as != ep.owner_as;
  }
  EXPECT_GT(outsourced, 0);
}

TEST(World, DeterministicForSeed) {
  WorldConfig config;
  config.scale = 1.0 / 2048;
  const World a = World::generate(config);
  const World b = World::generate(config);
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  ASSERT_EQ(a.ases().size(), b.ases().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].index, b.blocks()[i].index);
    EXPECT_EQ(a.blocks()[i].users, b.blocks()[i].users);
    EXPECT_EQ(a.blocks()[i].gdns_pop, b.blocks()[i].gdns_pop);
  }
}

TEST(World, DifferentSeedsDiffer) {
  WorldConfig a_config;
  a_config.scale = 1.0 / 2048;
  WorldConfig b_config = a_config;
  b_config.seed = 777;
  const World a = World::generate(a_config);
  const World b = World::generate(b_config);
  bool any_difference = a.blocks().size() != b.blocks().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.blocks().size(), b.blocks().size());
       ++i) {
    any_difference = a.blocks()[i].index != b.blocks()[i].index ||
                     a.blocks()[i].users != b.blocks()[i].users;
  }
  EXPECT_TRUE(any_difference);
}

TEST(World, BlockLookupAndRange) {
  const World& w = small_world();
  const Slash24Block& probe = w.blocks()[w.blocks().size() / 2];
  const Slash24Block* found = w.block_at(probe.index);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->index, probe.index);
  EXPECT_EQ(w.block_at(0xFFFFFF), nullptr);

  const auto [first, last] =
      w.block_range(net::Prefix::from_slash24_index(probe.index).widen_to(16));
  EXPECT_LE(first, last);
  for (std::size_t i = first; i < last; ++i) {
    EXPECT_EQ(w.blocks()[i].index >> 8, probe.index >> 8);
  }
}

TEST(World, GdnsRateScalesWithUsersAndShare) {
  const World& w = small_world();
  const Slash24Block* busy = nullptr;
  for (const Slash24Block& block : w.blocks()) {
    if (block.users > 10 && (!busy || block.users > busy->users)) {
      busy = &block;
    }
  }
  ASSERT_NE(busy, nullptr);
  EXPECT_GT(w.gdns_rate(*busy, kDomainGoogle), 0);
  EXPECT_GE(w.total_domain_rate(*busy, kDomainGoogle),
            w.gdns_rate(*busy, kDomainGoogle));
}

TEST(World, ChinaGoogleTrafficSuppressed) {
  const World& w = small_world();
  std::size_t cn = 0;
  for (std::size_t c = 0; c < w.countries().size(); ++c) {
    if (w.countries()[c].code == "CN") cn = c;
  }
  EXPECT_LT(
      w.country_domain_multiplier(static_cast<std::uint16_t>(cn),
                                  kDomainGoogle),
      0.2);
}

TEST(Activity, ArrivalRateSumsBlocksServedByPop) {
  const World& w = small_world();
  const WorldActivityModel model(&w);
  // Find a busy block and check its PoP's rate over its /24 is exactly the
  // block's own rate.
  for (const Slash24Block& block : w.blocks()) {
    if (block.users > 50) {
      const double rate = model.arrival_rate(
          block.gdns_pop, w.domains()[kDomainGoogle].name,
          net::Prefix::from_slash24_index(block.index));
      EXPECT_NEAR(rate, w.gdns_rate(block, kDomainGoogle), 1e-12);
      return;
    }
  }
  FAIL() << "no busy block found";
}

TEST(Activity, UnknownDomainHasZeroRate) {
  const World& w = small_world();
  const WorldActivityModel model(&w);
  EXPECT_EQ(model.arrival_rate(0, *dns::DnsName::parse("nope.example"),
                               *net::Prefix::parse("1.0.0.0/16")),
            0);
}

TEST(Ditl, GroundTruthCoversEndpointsAndRecursers) {
  const World& w = small_world();
  const auto truth = chromium_ground_truth(w);
  std::unordered_set<std::uint32_t> truth_sources;
  for (const auto& [addr, rate] : truth) truth_sources.insert(addr);
  int endpoints_with_users = 0;
  for (const ResolverEndpoint& ep : w.resolver_endpoints()) {
    if (ep.served_chromium_users > 0) {
      ++endpoints_with_users;
      EXPECT_TRUE(truth_sources.contains(ep.address.value()));
    }
  }
  EXPECT_GT(endpoints_with_users, 0);
}

TEST(Ditl, GeneratorRespectsSampling) {
  const World& w = small_world();
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(1);
  DitlOptions coarse;
  coarse.sample_rate = 0.02;
  std::uint64_t coarse_count = 0;
  generate_ditl(w, roots, coarse, [&](const roots::TraceRecord&) {
    ++coarse_count;
  });
  DitlOptions fine;
  fine.sample_rate = 0.005;
  std::uint64_t fine_count = 0;
  generate_ditl(w, roots, fine, [&](const roots::TraceRecord&) {
    ++fine_count;
  });
  ASSERT_GT(coarse_count, 0u);
  EXPECT_NEAR(static_cast<double>(fine_count) / coarse_count, 0.25, 0.05);
}

TEST(Ditl, GeneratorIsReplayable) {
  const World& w = small_world();
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(1);
  DitlOptions options;
  options.sample_rate = 0.005;
  std::vector<roots::TraceRecord> first, second;
  generate_ditl(w, roots, options, [&](const roots::TraceRecord& rec) {
    first.push_back(rec);
  });
  generate_ditl(w, roots, options, [&](const roots::TraceRecord& rec) {
    second.push_back(rec);
  });
  EXPECT_EQ(first, second);
}

TEST(Ditl, OnlyUsableLettersEmitted) {
  const World& w = small_world();
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(1);
  const auto usable_letters = roots.usable_ditl_letters();
  const std::set<char> usable(usable_letters.begin(), usable_letters.end());
  DitlOptions options;
  options.sample_rate = 0.005;
  DitlStats stats =
      generate_ditl(w, roots, options, [&](const roots::TraceRecord& rec) {
        EXPECT_TRUE(usable.contains(rec.root_letter));
      });
  EXPECT_GT(stats.suppressed, 0u) << "some traffic lands on other letters";
}

}  // namespace
}  // namespace netclients::sim
