// Snapshot store + serving index suite (labels: determinism, tsan).
//
// Covers the netclients.snap.v1 persistence layer end to end: lossless
// round-trips, byte-identical encodes regardless of REPRO_THREADS, the
// tolerant reader's skip-and-count behaviour under truncation and
// per-section corruption (it must never crash and must keep every intact
// epoch), the strict validate() gate, snapshot-handle lookup determinism
// across thread counts, and epoch-diff churn analytics. (The serving
// tier itself — handle lifetime, concurrent publish/read — lives in
// test_serve.)
//
// One shared fixture runs the two-epoch campaign once; every case reads
// from it. Campaigns are expensive — keep the world at kScale.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario/scenario.h"
#include "core/serve/service.h"
#include "core/snapshot/snapshot.h"
#include "net/rng.h"

namespace netclients::core {
namespace {

constexpr double kScale = 2048;

/// Shared two-epoch campaign + its encoded snapshot, built once.
class SnapshotSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(ScenarioBuilder()
                                 .scale_denominator(kScale)
                                 .epochs(2)
                                 .build());
    epochs_ = new std::vector<snapshot::EpochRecord>(scenario_->run_epochs());
    bytes_ = new std::string(snapshot::encode(*epochs_));
  }
  static void TearDownTestSuite() {
    delete bytes_;
    delete epochs_;
    delete scenario_;
    bytes_ = nullptr;
    epochs_ = nullptr;
    scenario_ = nullptr;
  }

  static const Scenario& scenario() { return *scenario_; }
  static const std::vector<snapshot::EpochRecord>& epochs() {
    return *epochs_;
  }
  static const std::string& bytes() { return *bytes_; }

 private:
  static Scenario* scenario_;
  static std::vector<snapshot::EpochRecord>* epochs_;
  static std::string* bytes_;
};

Scenario* SnapshotSuite::scenario_ = nullptr;
std::vector<snapshot::EpochRecord>* SnapshotSuite::epochs_ = nullptr;
std::string* SnapshotSuite::bytes_ = nullptr;

/// Runs `fn` with REPRO_THREADS pinned to `threads`, restoring the
/// previous value afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const char* prev = std::getenv("REPRO_THREADS");
  const std::string saved = prev ? prev : "";
  ::setenv("REPRO_THREADS", std::to_string(threads).c_str(), 1);
  auto result = fn();
  if (prev) {
    ::setenv("REPRO_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("REPRO_THREADS");
  }
  return result;
}

// ------------------------------------------------------------ round trip

TEST_F(SnapshotSuite, CampaignProducesNonTrivialEpochs) {
  ASSERT_EQ(epochs().size(), 2u);
  EXPECT_GT(epochs()[0].prefixes.size(), 0u);
  EXPECT_GT(epochs()[1].prefixes.size(), 0u);
  EXPECT_GT(epochs()[0].totals.probes_sent, 0u);
  EXPECT_GT(epochs()[0].as_aggregates.size(), 0u);
  EXPECT_EQ(epochs()[0].world_seed, scenario().world().config().seed);
}

TEST_F(SnapshotSuite, RoundTripIsLossless) {
  const auto file = snapshot::decode(bytes());
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->stats.sections_skipped, 0u);
  EXPECT_EQ(file->stats.crc_failures, 0u);
  EXPECT_FALSE(file->stats.truncated);
  ASSERT_EQ(file->epochs.size(), epochs().size());
  for (std::size_t i = 0; i < epochs().size(); ++i) {
    EXPECT_EQ(file->epochs[i], epochs()[i]) << "epoch " << i;
  }
}

TEST_F(SnapshotSuite, DeltaEncodingShrinksLaterEpochs) {
  // Epoch 1 is stored as a delta against epoch 0; with heavy overlap
  // between the epochs' active sets it must be smaller than a full
  // re-encode of epoch 1 alone.
  const std::string full_epoch1 = snapshot::encode({epochs()[1]});
  const std::string both = snapshot::encode(epochs());
  const std::string full_epoch0 = snapshot::encode({epochs()[0]});
  EXPECT_LT(both.size(), full_epoch0.size() + full_epoch1.size());
}

TEST_F(SnapshotSuite, EncodeIsByteIdenticalAcrossThreadCounts) {
  // The campaign itself is the threaded stage; encode consumes its
  // (already deterministic) records. Re-run the whole pipeline at 1 and
  // 4 threads and require identical bytes.
  const std::string serial = with_threads(1, [&] {
    return snapshot::encode(scenario().run_epochs());
  });
  const std::string parallel = with_threads(4, [&] {
    return snapshot::encode(scenario().run_epochs());
  });
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, bytes());
}

TEST_F(SnapshotSuite, FileRoundTripMatchesInMemory) {
  const std::string path = ::testing::TempDir() + "snapshot_roundtrip.snap";
  ASSERT_TRUE(snapshot::write(path, epochs()));
  const auto file = snapshot::read(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->epochs, epochs());
  EXPECT_TRUE(snapshot::validate_file(path).empty());
  std::remove(path.c_str());
}

// ------------------------------------------------- tolerance under damage

TEST_F(SnapshotSuite, TruncationAtEveryLengthNeverCrashes) {
  // Chop the file at a spread of lengths (every prefix of the header
  // region, then strided): decode must never crash, must never invent
  // epochs, and — except when the cut lands exactly on a frame boundary,
  // where the shorter file is indistinguishable from a well-formed one —
  // must flag truncation.
  const std::string& good = bytes();
  for (std::size_t cut = 0; cut < good.size();
       cut += (cut < 64 ? 1 : 97)) {
    const auto file = snapshot::decode(std::string_view(good).substr(0, cut));
    if (cut < 8) {
      EXPECT_FALSE(file.has_value()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(file.has_value()) << "cut=" << cut;
    // A proper prefix of the file can never carry every section of both
    // epochs, so either the reader noticed the ragged tail or it dropped
    // an incomplete epoch (boundary cut).
    EXPECT_TRUE(file->stats.truncated ||
                file->epochs.size() < epochs().size())
        << "cut=" << cut;
    EXPECT_LE(file->epochs.size(), epochs().size());
  }
}

TEST_F(SnapshotSuite, CorruptionOfAnyByteIsContained) {
  // Flip one byte at a stride of positions. Whatever breaks, decode must
  // not crash, and any fully intact epoch it does return must equal the
  // original record exactly (CRC framing catches the rest).
  const std::string& good = bytes();
  for (std::size_t pos = 8; pos < good.size(); pos += 131) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5A);
    const auto file = snapshot::decode(bad);
    if (!file.has_value()) continue;  // magic damaged
    for (const auto& epoch : file->epochs) {
      for (const auto& orig : epochs()) {
        if (orig.epoch_id == epoch.epoch_id &&
            orig.world_seed == epoch.world_seed &&
            orig.prefixes.size() == epoch.prefixes.size()) {
          // Same identity and shape: sampled fields must agree (a raw
          // EXPECT_EQ of whole epochs would also pass, but this keeps
          // the failure message readable).
          EXPECT_EQ(orig.totals.cache_hits, epoch.totals.cache_hits);
        }
      }
    }
  }
}

TEST_F(SnapshotSuite, DamagedDeltaSectionDropsOnlyThatEpoch) {
  // Corrupt a byte inside the LAST epoch's span: epoch 0 (stored full,
  // earlier in the file) must survive; the damaged epoch must be
  // dropped and counted.
  const std::string& good = bytes();
  // The final section's CRC field sits in the last frame; corrupt the
  // file's final payload byte, which belongs to epoch 1.
  std::string bad = good;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0xFF);
  const auto file = snapshot::decode(bad);
  ASSERT_TRUE(file.has_value());
  ASSERT_GE(file->epochs.size(), 1u);
  EXPECT_EQ(file->epochs[0], epochs()[0]);
  EXPECT_GE(file->stats.crc_failures + file->stats.sections_skipped, 1u);
  EXPECT_GE(file->stats.epochs_skipped, 1u);
}

TEST_F(SnapshotSuite, ValidateAcceptsGoodRejectsCorrupt) {
  EXPECT_TRUE(snapshot::validate(bytes()).empty());
  std::string bad = bytes();
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  EXPECT_FALSE(snapshot::validate(bad).empty());
  EXPECT_FALSE(snapshot::validate("NOTASNAP").empty());
  EXPECT_FALSE(snapshot::validate(std::string_view(bytes()).substr(
                   0, bytes().size() - 3))
                   .empty());
}

// ----------------------------------------------------------- serving index

TEST_F(SnapshotSuite, LookupManyIsByteIdenticalAcrossThreadCounts) {
  // All serving goes through the Service handle API; the ClientIndex
  // underneath is an internal build artifact.
  serve::Service service;
  service.publish(std::span<const snapshot::EpochRecord>(epochs()));
  const serve::SnapshotHandle handle = service.acquire();
  ASSERT_GT(handle->index().prefix_count(), 0u);

  // ~200k deterministic queries spanning hits and misses.
  net::Rng rng(0xD15C0);
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    queries.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng())));
  }
  const auto one = handle->lookup_many(queries, 1);
  const auto eight = handle->lookup_many(queries, 8);
  EXPECT_EQ(one, eight);

  // REPRO_THREADS env form (threads = 0) must agree too.
  const auto env_one =
      with_threads(1, [&] { return handle->lookup_many(queries, 0); });
  const auto env_eight =
      with_threads(8, [&] { return handle->lookup_many(queries, 0); });
  EXPECT_EQ(env_one, env_eight);
  EXPECT_EQ(one, env_one);

  // And the batched path answers exactly what the single-query path and
  // the structurally independent trie oracle answer.
  for (std::size_t i = 0; i < queries.size(); i += 173) {
    ASSERT_EQ(handle->lookup(queries[i]), one[i]) << "query " << i;
    ASSERT_EQ(handle->index().lookup_reference(queries[i]), one[i])
        << "query " << i;
  }
}

TEST_F(SnapshotSuite, IndexAggregatesMatchEntrySums) {
  serve::Service service;
  service.publish(std::span<const snapshot::EpochRecord>(epochs()));
  const serve::SnapshotHandle handle = service.acquire();
  const serve::ClientIndex& index = handle->index();
  double as_total = 0;
  for (const auto& agg : index.as_aggregates()) {
    EXPECT_EQ(index.as_volume(agg.asn), agg.volume);
    as_total += agg.volume;
  }
  EXPECT_LE(as_total, index.total_volume() + 1e-9);
  const auto top = index.top_as(3);
  ASSERT_LE(top.size(), 3u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].volume, top[i].volume);
  }
}

// ------------------------------------------------------------- epoch diff

TEST_F(SnapshotSuite, DiffReportsChurnAndIsDeterministic) {
  const serve::EpochDiff d1 = serve::diff_epochs(epochs()[0], epochs()[1]);
  const serve::EpochDiff d2 = serve::diff_epochs(epochs()[0], epochs()[1]);
  EXPECT_EQ(d1.gained, d2.gained);
  EXPECT_EQ(d1.lost, d2.lost);
  EXPECT_EQ(d1.persisting, d2.persisting);
  EXPECT_EQ(d1.mean_rank_drift, d2.mean_rank_drift);

  // Re-keyed epochs must actually churn (the acceptance criterion
  // snapctl diff demonstrates): some prefixes gained, some lost, and a
  // heavy persisting core.
  EXPECT_GT(d1.gained.size(), 0u);
  EXPECT_GT(d1.lost.size(), 0u);
  EXPECT_GT(d1.persisting, 0u);
  EXPECT_GT(d1.persisting, d1.gained.size() / 4);

  // Conservation: every `from` prefix is lost or persisting, every `to`
  // prefix gained or persisting.
  EXPECT_EQ(d1.lost.size() + d1.persisting, epochs()[0].prefixes.size());
  EXPECT_EQ(d1.gained.size() + d1.persisting, epochs()[1].prefixes.size());
}

TEST_F(SnapshotSuite, DiffOfAnEpochWithItselfIsEmpty) {
  const serve::EpochDiff d = serve::diff_epochs(epochs()[0], epochs()[0]);
  EXPECT_EQ(d.gained.size(), 0u);
  EXPECT_EQ(d.lost.size(), 0u);
  EXPECT_EQ(d.persisting, epochs()[0].prefixes.size());
  EXPECT_EQ(d.mean_rank_drift, 0.0);
  EXPECT_EQ(d.normalized_rank_drift, 0.0);
}

}  // namespace
}  // namespace netclients::core
