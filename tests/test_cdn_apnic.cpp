// Tests for the validation-dataset substrates: the Microsoft-style CDN
// observation (clients / resolvers / Traffic Manager ECS) and the
// APNIC-style ad-based population estimates.

#include <gtest/gtest.h>

#include <unordered_set>

#include "apnic/apnic.h"
#include "cdn/cdn.h"
#include "sim/world.h"

namespace netclients {
namespace {

const sim::World& world() {
  static const sim::World w = [] {
    sim::WorldConfig config;
    config.scale = 1.0 / 512;
    return sim::World::generate(config);
  }();
  return w;
}

const cdn::CdnObservation& observation() {
  static const cdn::CdnObservation obs = cdn::observe_cdn(world(), {});
  return obs;
}

TEST(Cdn, ClientVolumeOnlyFromClientBlocks) {
  for (const auto& [idx, volume] : observation().client_volume) {
    const sim::Slash24Block* block = world().block_at(idx);
    ASSERT_NE(block, nullptr);
    EXPECT_GT(block->clients(), 0) << "volume from clientless /24 " << idx;
    EXPECT_GE(volume, 1);
  }
}

TEST(Cdn, ObservesNearlyAllBusyBlocks) {
  std::size_t busy = 0, observed = 0;
  for (const sim::Slash24Block& block : world().blocks()) {
    if (block.users > 50) {
      ++busy;
      observed += observation().client_volume.contains(block.index);
    }
  }
  ASSERT_GT(busy, 100u);
  EXPECT_GT(static_cast<double>(observed) / static_cast<double>(busy), 0.95);
}

TEST(Cdn, EcsPrefixesAreClientBlocks) {
  for (std::uint32_t idx : observation().ecs_prefixes) {
    const sim::Slash24Block* block = world().block_at(idx);
    ASSERT_NE(block, nullptr);
    EXPECT_GT(block->clients(), 0);
  }
}

TEST(Cdn, EcsPrefixesMostlyOverlapHttpClients) {
  // The §4 "DNS is a good proxy for HTTP" premise.
  std::size_t overlap = 0;
  for (std::uint32_t idx : observation().ecs_prefixes) {
    overlap += observation().client_volume.contains(idx);
  }
  ASSERT_FALSE(observation().ecs_prefixes.empty());
  EXPECT_GT(static_cast<double>(overlap) / observation().ecs_prefixes.size(),
            0.85);
}

TEST(Cdn, ResolverDatasetIncludesCentralEndpoints) {
  std::size_t found = 0, expected = 0;
  for (const sim::ResolverEndpoint& ep : world().resolver_endpoints()) {
    if (ep.served_users > 100) {
      ++expected;
      found += observation().resolver_addr_clients.contains(
          ep.address.value());
    }
  }
  ASSERT_GT(expected, 10u);
  EXPECT_EQ(found, expected) << "busy resolvers must be observed";
}

TEST(Cdn, GooglePopClientCountsCoverActivePopsOnly) {
  for (const auto& [pop, clients] : observation().google_pop_clients) {
    EXPECT_TRUE(world().pops().site(pop).active);
    EXPECT_GT(clients, 0);
  }
}

TEST(Cdn, UnprobedPopsCarrySmallShare) {
  // Appendix A.1: the five unprobed-but-active sites carry ~5% of Google
  // DNS load.
  double total = 0, minor = 0;
  const std::unordered_set<std::string> unprobed = {
      "Hong Kong", "Osaka", "Hamina", "Buenos Aires", "Lagos"};
  for (const auto& [pop, clients] : observation().google_pop_clients) {
    total += clients;
    if (unprobed.contains(world().pops().site(pop).city)) minor += clients;
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(minor / total, 0.15);
  EXPECT_GT(minor / total, 0.005);
}

TEST(Cdn, DeterministicForSeed) {
  const cdn::CdnObservation again = cdn::observe_cdn(world(), {});
  EXPECT_EQ(again.client_volume.size(), observation().client_volume.size());
  EXPECT_EQ(again.ecs_prefixes, observation().ecs_prefixes);
}

TEST(Cdn, DifferentSeedDiffers) {
  cdn::CdnOptions options;
  options.seed = 999;
  const cdn::CdnObservation other = cdn::observe_cdn(world(), options);
  EXPECT_NE(other.ecs_prefixes, observation().ecs_prefixes);
}

// ------------------------------------------------------------------- APNIC

TEST(Apnic, PublishesSubsetOfAses) {
  const auto est = apnic::estimate_population(world(), {});
  ASSERT_GT(est.users_by_as.size(), 10u);
  EXPECT_LT(est.users_by_as.size(), world().ases().size());
  std::unordered_set<std::uint32_t> known;
  for (const sim::AsEntry& as : world().ases()) known.insert(as.asn);
  for (const auto& [asn, users] : est.users_by_as) {
    EXPECT_TRUE(known.contains(asn));
    EXPECT_GT(users, 0);
  }
}

TEST(Apnic, MissesTinyAsesKeepsGiants) {
  const auto est = apnic::estimate_population(world(), {});
  double biggest_users = 0;
  std::uint32_t biggest_asn = 0;
  for (const sim::AsEntry& as : world().ases()) {
    if (as.users > biggest_users) {
      biggest_users = as.users;
      biggest_asn = as.asn;
    }
  }
  EXPECT_TRUE(est.users_by_as.contains(biggest_asn));
  // Tiny eyeball ASes (a handful of users) should mostly be invisible.
  int tiny = 0, tiny_published = 0;
  for (const sim::AsEntry& as : world().ases()) {
    if (as.users > 0 && as.users < 20) {
      ++tiny;
      tiny_published += est.users_by_as.contains(as.asn);
    }
  }
  ASSERT_GT(tiny, 10);
  EXPECT_LT(static_cast<double>(tiny_published) / tiny, 0.2);
}

TEST(Apnic, EstimatesCorrelateWithTruth) {
  const auto est = apnic::estimate_population(world(), {});
  // Concordance check: for published ASes, bigger truth => usually bigger
  // estimate.
  std::vector<std::pair<double, double>> pairs;  // (truth, estimate)
  for (const sim::AsEntry& as : world().ases()) {
    auto it = est.users_by_as.find(as.asn);
    if (it != est.users_by_as.end()) {
      pairs.emplace_back(as.users, it->second);
    }
  }
  ASSERT_GT(pairs.size(), 20u);
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < pairs.size(); i += 3) {
    for (std::size_t j = i + 1; j < pairs.size(); j += 7) {
      if (pairs[i].first == pairs[j].first) continue;
      ++total;
      concordant += (pairs[i].first < pairs[j].first) ==
                    (pairs[i].second < pairs[j].second);
    }
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(concordant) / total, 0.8);
}

TEST(Apnic, BotsAreMostlyInvisible) {
  const auto est = apnic::estimate_population(world(), {});
  // Hosting ASes have bot populations but essentially no ad impressions.
  int hosting_published = 0, hosting_total = 0;
  for (const sim::AsEntry& as : world().ases()) {
    if (as.type == sim::AsType::kHostingCloud && as.bot_users > 0) {
      ++hosting_total;
      hosting_published += est.users_by_as.contains(as.asn);
    }
  }
  ASSERT_GT(hosting_total, 5);
  EXPECT_LT(static_cast<double>(hosting_published) / hosting_total, 0.5);
}

TEST(Apnic, WorldPopulationNearTruth) {
  const auto est = apnic::estimate_population(world(), {});
  EXPECT_NEAR(est.world_population, world().total_users(),
              world().total_users() * 0.1);
}

TEST(Apnic, HigherBudgetFindsMoreAses) {
  apnic::ApnicOptions cheap;
  cheap.impressions_per_user = 0.001;
  apnic::ApnicOptions rich;
  rich.impressions_per_user = 0.05;
  const auto cheap_est = apnic::estimate_population(world(), cheap);
  const auto rich_est = apnic::estimate_population(world(), rich);
  EXPECT_GT(rich_est.users_by_as.size(), cheap_est.users_by_as.size());
}

}  // namespace
}  // namespace netclients
