// Streaming world-generation suite (labels: determinism, tsan): the
// emitted block sequence — and therefore StreamStats::digest — must be
// byte-identical for every thread count, every memory budget, and every
// batch split, because all randomness is drawn from per-AS shard-RNG
// streams keyed by logical AS index. Also asserts the bounded-memory
// contract: the arena high-water mark is a function of the budget knob,
// never of the world size.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/stream.h"

namespace netclients::sim {
namespace {

StreamConfig small_config() {
  StreamConfig config;
  config.seed = 7;
  config.target_routed_slash24s = 60'000;
  config.ases = 400;
  return config;
}

/// Collects every emitted block (tests only — the whole point of the
/// streamer is that production paths never do this).
std::vector<StreamBlock> collect(const WorldStreamer& streamer,
                                 StreamStats* stats = nullptr) {
  std::vector<StreamBlock> blocks;
  const StreamStats s = streamer.run(
      [&](std::span<const StreamBlock> batch) {
        blocks.insert(blocks.end(), batch.begin(), batch.end());
      });
  if (stats) *stats = s;
  return blocks;
}

TEST(WorldStreamer, PlanHitsTheRoutedTarget) {
  const WorldStreamer streamer(small_config());
  StreamStats stats;
  const auto blocks = collect(streamer, &stats);
  EXPECT_EQ(blocks.size(), streamer.planned_slash24s());
  EXPECT_EQ(stats.slash24s, streamer.planned_slash24s());
  EXPECT_EQ(stats.routed_slash24s, streamer.planned_routed_slash24s());
  // Within 1% of the target (per-AS rounding only).
  EXPECT_NEAR(static_cast<double>(stats.routed_slash24s), 60'000.0,
              600.0);
  EXPECT_GT(stats.active_slash24s, 0u);
  EXPECT_LE(stats.active_slash24s, stats.routed_slash24s);
  EXPECT_GT(stats.total_users, 0.0);
}

TEST(WorldStreamer, BlocksAreAscendingAndConsistent) {
  const WorldStreamer streamer(small_config());
  const auto blocks = collect(streamer);
  ASSERT_FALSE(blocks.empty());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].index, blocks[i - 1].index + 1);
  }
  for (const StreamBlock& block : blocks) {
    if (block.active()) {
      EXPECT_TRUE(block.routed());
      EXPECT_GT(block.users, 0.0f);
    }
    if (!block.routed()) {
      EXPECT_EQ(block.as_index, StreamBlock::kNoAs);
      EXPECT_EQ(block.users, 0.0f);
    } else {
      EXPECT_NE(block.as_index, StreamBlock::kNoAs);
    }
  }
}

TEST(WorldStreamer, DigestInvariantAcrossThreadsAndBudgets) {
  StreamStats reference;
  const std::vector<StreamBlock> expected =
      collect(WorldStreamer(small_config()), &reference);
  for (const int threads : {1, 2, 8}) {
    // Budgets chosen to force different batch splits: one tiny (many
    // flushes), one holding the whole world (a single flush).
    for (const std::size_t budget :
         {std::size_t{1} << 18, std::size_t{64} << 20}) {
      StreamConfig config = small_config();
      config.threads = threads;
      config.memory_budget_bytes = budget;
      StreamStats stats;
      const auto blocks = collect(WorldStreamer(config), &stats);
      EXPECT_EQ(stats.digest, reference.digest)
          << "threads=" << threads << " budget=" << budget;
      EXPECT_EQ(stats.routed_slash24s, reference.routed_slash24s);
      EXPECT_EQ(stats.total_users, reference.total_users);
      ASSERT_EQ(blocks.size(), expected.size());
      EXPECT_TRUE(blocks == expected)
          << "threads=" << threads << " budget=" << budget;
    }
  }
}

TEST(WorldStreamer, ArenaStaysWithinBudget) {
  // 32K-block budget: above the largest single AS span (the hard floor),
  // well below the ~77K-block world — the budget must bind.
  StreamConfig config = small_config();
  config.memory_budget_bytes = std::size_t{1} << 19;
  StreamStats stats;
  collect(WorldStreamer(config), &stats);
  EXPECT_LE(stats.arena_peak_bytes, config.memory_budget_bytes);
  EXPECT_LE(stats.arena_peak_blocks, stats.arena_capacity_blocks);
  EXPECT_GT(stats.batches, 1u);  // the budget actually forced batching
}

TEST(WorldStreamer, TinyBudgetIsFlooredAtOneAsSpan) {
  // A budget below any single AS span cannot be honored; the arena is
  // floored at the largest span so generation still makes progress.
  StreamConfig config = small_config();
  config.memory_budget_bytes = 16;  // one block
  StreamStats tiny;
  const auto blocks = collect(WorldStreamer(config), &tiny);
  StreamStats reference;
  collect(WorldStreamer(small_config()), &reference);
  EXPECT_EQ(tiny.digest, reference.digest);
  EXPECT_EQ(blocks.size(), reference.slash24s);
}

TEST(WorldStreamer, SeedChangesTheWorld) {
  StreamConfig other = small_config();
  other.seed = 8;
  StreamStats a, b;
  collect(WorldStreamer(small_config()), &a);
  collect(WorldStreamer(other), &b);
  EXPECT_NE(a.digest, b.digest);
}

TEST(WorldStreamer, MillionBlockRunStaysBounded) {
  // The acceptance-criteria scale: 1M+ routed /24s under a budget far
  // below the world size. ~1.3M emitted blocks is ~21 MB of world; the
  // 4 MiB arena holds ~260K.
  StreamConfig config;
  config.seed = 42;
  config.target_routed_slash24s = 1'000'000;
  config.memory_budget_bytes = std::size_t{4} << 20;
  const WorldStreamer streamer(config);
  StreamStats stats;
  std::uint64_t visited = 0;
  stats = streamer.run([&](std::span<const StreamBlock> batch) {
    visited += batch.size();
  });
  EXPECT_EQ(visited, stats.slash24s);
  EXPECT_GE(stats.routed_slash24s, 990'000u);
  EXPECT_LE(stats.arena_peak_bytes, config.memory_budget_bytes);
  EXPECT_GE(stats.batches, 4u);
  const std::size_t rss = current_rss_bytes();
  if (rss > 0) {
    // The whole world would be stats.slash24s * 16 bytes; assert RSS is
    // not carrying it (generous slack for the allocator, the binary, and
    // the test framework).
    EXPECT_LT(rss, std::size_t{256} << 20);
  }
}

}  // namespace
}  // namespace netclients::sim
