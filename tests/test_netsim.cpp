// Tests for the packet-level message bus: delivery ordering, latency,
// UDP truncation + TCP retry, and a full DNS request/response exchange
// between bus endpoints using the wire codec.

#include <gtest/gtest.h>

#include "anycast/catchment.h"
#include "anycast/pop.h"
#include "dns/wire.h"
#include "dnssrv/authoritative.h"
#include "googledns/google_dns.h"
#include "netsim/bus.h"
#include "netsim/dns_endpoint.h"

namespace netclients::netsim {
namespace {

const net::Ipv4Addr kClient = *net::Ipv4Addr::parse("10.0.0.1");
const net::Ipv4Addr kServer = *net::Ipv4Addr::parse("10.0.0.53");

TEST(Bus, DeliversInTimestampOrder) {
  MessageBus bus;
  std::vector<int> order;
  bus.attach(kServer, [&](const Datagram& d, net::SimTime) {
    order.push_back(d.payload[0]);
  });
  bus.send(kClient, kServer, Proto::kUdp, {2}, 0.0, 0.2);
  bus.send(kClient, kServer, Proto::kUdp, {1}, 0.0, 0.1);
  bus.send(kClient, kServer, Proto::kUdp, {3}, 0.0, 0.3);
  EXPECT_EQ(bus.run_until(1.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Bus, FifoOnEqualTimestamps) {
  MessageBus bus;
  std::vector<int> order;
  bus.attach(kServer, [&](const Datagram& d, net::SimTime) {
    order.push_back(d.payload[0]);
  });
  for (int i = 0; i < 5; ++i) {
    bus.send(kClient, kServer, Proto::kUdp,
             {static_cast<std::uint8_t>(i)}, 0.0, 0.5);
  }
  bus.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, RespectsDeadline) {
  MessageBus bus;
  int received = 0;
  bus.attach(kServer, [&](const Datagram&, net::SimTime) { ++received; });
  bus.send(kClient, kServer, Proto::kUdp, {1}, 0.0, 0.1);
  bus.send(kClient, kServer, Proto::kUdp, {2}, 0.0, 5.0);
  EXPECT_EQ(bus.run_until(1.0), 1u);
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(bus.idle());
  bus.run_until(10.0);
  EXPECT_EQ(received, 2);
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, DropsToUnattachedAddress) {
  MessageBus bus;
  bus.send(kClient, kServer, Proto::kUdp, {1}, 0.0, 0.1);
  EXPECT_EQ(bus.run_until(1.0), 0u);
  EXPECT_EQ(bus.stats().dropped, 1u);
}

TEST(Bus, HandlersCanReply) {
  MessageBus bus;
  double reply_time = -1;
  bus.attach(kServer, [&](const Datagram& d, net::SimTime now) {
    bus.send(kServer, d.src, d.proto, {42}, now, 0.05);
  });
  bus.attach(kClient, [&](const Datagram& d, net::SimTime now) {
    ASSERT_EQ(d.payload[0], 42);
    reply_time = now;
  });
  bus.send(kClient, kServer, Proto::kUdp, {1}, 0.0, 0.1);
  bus.run_until(1.0);
  EXPECT_NEAR(reply_time, 0.15, 1e-9);
}

TEST(Bus, UdpTruncationSetsTcBit) {
  MessageBus bus(512);
  bool saw_tc = false;
  bus.attach(kClient, [&](const Datagram& d, net::SimTime) {
    const auto decoded = dns::decode(d.payload);
    ASSERT_TRUE(decoded.ok) << decoded.error;
    saw_tc = decoded.message.header.tc;
    EXPECT_TRUE(decoded.message.answers.empty());
  });
  // A response fattened past 512 bytes.
  dns::DnsMessage big = dns::make_response(
      dns::make_query(7, *dns::DnsName::parse("big.example"),
                      dns::RecordType::kTxt, true),
      dns::RCode::kNoError);
  big.answers.push_back(dns::ResourceRecord{
      *dns::DnsName::parse("big.example"), dns::RecordType::kTxt,
      dns::kClassIn, 60, dns::TxtData{std::string(900, 'x')}});
  bus.send(kServer, kClient, Proto::kUdp, dns::encode(big), 0.0, 0.1);
  bus.run_until(1.0);
  EXPECT_TRUE(saw_tc);
  EXPECT_EQ(bus.stats().truncated, 1u);
}

TEST(Bus, TcpCarriesLargePayloads) {
  MessageBus bus(512);
  std::size_t received_size = 0;
  bus.attach(kClient, [&](const Datagram& d, net::SimTime) {
    received_size = d.payload.size();
  });
  bus.send(kServer, kClient, Proto::kTcp, std::vector<std::uint8_t>(900, 7),
           0.0, 0.1);
  bus.run_until(1.0);
  EXPECT_EQ(received_size, 900u);
  EXPECT_EQ(bus.stats().truncated, 0u);
}

TEST(Bus, FullDnsExchangeWithTcpFallback) {
  // Client asks an ECS-aware authoritative over UDP; on a truncated reply
  // it retries over TCP — the classic stub dance, end to end in wire
  // format over the bus.
  MessageBus bus(48);  // tiny MTU to force truncation of any real answer
  dnssrv::AuthoritativeServer auth;
  dnssrv::ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  auth.add_zone(zone);

  bus.attach(kServer, [&](const Datagram& d, net::SimTime now) {
    const auto query = dns::decode(d.payload);
    if (!query.ok) return;
    bus.send(kServer, d.src, d.proto,
             dns::encode(auth.handle(query.message)), now, 0.02);
  });

  int answers_received = 0;
  bool retried_tcp = false;
  const auto query = dns::make_query(
      9, *dns::DnsName::parse("www.example.com"), dns::RecordType::kA, true,
      dns::EcsOption::for_query(*net::Prefix::parse("100.64.5.0/24")));
  bus.attach(kClient, [&](const Datagram& d, net::SimTime now) {
    const auto response = dns::decode(d.payload);
    ASSERT_TRUE(response.ok) << response.error;
    if (response.message.header.tc && !retried_tcp) {
      retried_tcp = true;
      bus.send(kClient, kServer, Proto::kTcp, dns::encode(query), now, 0.02);
      return;
    }
    answers_received += static_cast<int>(response.message.answers.size());
  });
  bus.send(kClient, kServer, Proto::kUdp, dns::encode(query), 0.0, 0.02);
  bus.run_until(10.0);
  EXPECT_TRUE(retried_tcp);
  EXPECT_EQ(answers_received, 1);
}

TEST(DnsEndpoint, WireAndStructuredModesByteIdenticalOnBus) {
  // The same probe traffic against two authoritative endpoints — one
  // answering straight from wire bytes, one decoding/re-encoding — must
  // put byte-identical reply datagrams on the bus.
  dnssrv::AuthoritativeServer auth;
  dnssrv::ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  auth.add_zone(zone);
  const auto wire_addr = *net::Ipv4Addr::parse("10.0.0.53");
  const auto structured_addr = *net::Ipv4Addr::parse("10.0.0.54");

  MessageBus bus;
  AuthoritativeEndpointOptions wire_opts;
  wire_opts.mode = DnsWireMode::kWire;
  attach_authoritative(bus, wire_addr, auth, wire_opts);
  AuthoritativeEndpointOptions structured_opts;
  structured_opts.mode = DnsWireMode::kStructured;
  attach_authoritative(bus, structured_addr, auth, structured_opts);

  std::vector<std::vector<std::uint8_t>> wire_replies, structured_replies;
  bus.attach(kClient, [&](const Datagram& d, net::SimTime) {
    (d.src == wire_addr ? wire_replies : structured_replies)
        .push_back(d.payload);
  });

  for (std::uint16_t id = 0; id < 20; ++id) {
    const auto query = dns::encode(dns::make_query(
        id, *dns::DnsName::parse(id % 3 ? "www.example.com" : "nope.example"),
        dns::RecordType::kA, false,
        dns::EcsOption::for_query(
            net::Prefix(net::Ipv4Addr(0x64400000u + id * 256u), 24))));
    bus.send(kClient, wire_addr, Proto::kTcp, query, id * 0.1, 0.01);
    bus.send(kClient, structured_addr, Proto::kTcp, query, id * 0.1, 0.01);
  }
  bus.run_until(100.0);
  ASSERT_EQ(wire_replies.size(), 20u);
  EXPECT_EQ(wire_replies, structured_replies);
}

TEST(DnsEndpoint, GoogleEndpointAnswersSnoopTraffic) {
  // End-to-end over the bus against the wire-mode Google front end: an
  // RD=1 client fill followed by RD=0 ECS snoops must eventually hit.
  anycast::PopTable pops = anycast::PopTable::google_default();
  anycast::CatchmentModel catchment(&pops, 42);
  dnssrv::AuthoritativeServer auth;
  dnssrv::ZoneConfig zone;
  zone.name = *dns::DnsName::parse("www.example.com");
  zone.min_scope = 20;
  zone.max_scope = 24;
  auth.add_zone(zone);
  googledns::GooglePublicDns gdns(&pops, &catchment, &auth);

  MessageBus bus;
  const auto google = *net::Ipv4Addr::parse("8.8.8.8");
  GoogleEndpointOptions opts;
  opts.locate = [](net::Ipv4Addr) { return net::LatLon{52.5, 13.4}; };
  attach_google_dns(bus, google, gdns, opts);

  const auto domain = *dns::DnsName::parse("www.example.com");
  const auto client = *net::Ipv4Addr::parse("100.64.5.9");
  int snoop_hits = 0;
  bus.attach(kClient, [&](const Datagram& d, net::SimTime) {
    const auto response = dns::decode(d.payload);
    ASSERT_TRUE(response.ok);
    if (response.message.header.rd) return;  // echo of the fill query
    if (!response.message.answers.empty()) ++snoop_hits;
  });
  bus.send(kClient, google, Proto::kUdp,
           dns::encode(dns::make_query(
               1, domain, dns::RecordType::kA, true,
               dns::EcsOption::for_query(net::Prefix::slash24_of(client)))),
           0.0, 0.01);
  const auto scope =
      *auth.scope_for(domain, net::Prefix::slash24_of(client),
                      gdns.config().epoch);
  for (std::uint16_t attempt = 0; attempt < 16; ++attempt) {
    bus.send(kClient, google, Proto::kTcp,
             dns::encode(dns::make_query(
                 static_cast<std::uint16_t>(100 + attempt), domain,
                 dns::RecordType::kA, false,
                 dns::EcsOption::for_query(
                     net::Prefix::slash24_of(client).widen_to(scope)))),
             1.0 + attempt * 0.1, 0.01);
  }
  bus.run_until(10.0);
  EXPECT_GT(snoop_hits, 0);
}

TEST(FaultPlane, DisabledByDefault) {
  FaultPlane plane{FaultConfig{}};
  EXPECT_FALSE(plane.enabled());
  const auto d = plane.decide(kClient, kServer, 7, 1.0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.extra_latency, 0.0);
}

TEST(FaultPlane, DecisionsAreKeyedAndRepeatable) {
  FaultConfig config;
  config.loss_probability = 0.5;
  config.jitter_max_seconds = 0.1;
  FaultPlane plane{config};
  // Same (src, dst, sequence) ⇒ same verdict, independent of call order.
  const auto first = plane.decide(kClient, kServer, 3, 1.0);
  plane.decide(kServer, kClient, 4, 2.0);
  const auto again = plane.decide(kClient, kServer, 3, 1.0);
  EXPECT_EQ(first.drop, again.drop);
  EXPECT_EQ(first.extra_latency, again.extra_latency);
  // ...and the loss rate is roughly honored over many sequences.
  int dropped = 0;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    dropped += plane.decide(kClient, kServer, seq, 1.0).drop;
  }
  EXPECT_GT(dropped, 350);
  EXPECT_LT(dropped, 650);
}

TEST(FaultPlane, BlackholeDropsOnlyMatchingEndpoint) {
  FaultConfig config;
  config.blackholes.push_back(kServer);
  FaultPlane plane{config};
  EXPECT_TRUE(plane.decide(kClient, kServer, 0, 0.0).drop);
  EXPECT_EQ(plane.decide(kClient, kServer, 0, 0.0).cause,
            FaultDecision::Cause::kBlackhole);
  EXPECT_FALSE(plane.decide(kClient, kClient, 0, 0.0).drop);
}

TEST(FaultPlane, OutageWindowDropsInsideWindowOnly) {
  FaultConfig config;
  config.outages.push_back({2.0, 4.0, net::Ipv4Addr(0)});
  FaultPlane plane{config};
  EXPECT_FALSE(plane.decide(kClient, kServer, 0, 1.9).drop);
  EXPECT_TRUE(plane.decide(kClient, kServer, 0, 2.0).drop);
  EXPECT_EQ(plane.decide(kClient, kServer, 0, 3.0).cause,
            FaultDecision::Cause::kOutage);
  EXPECT_FALSE(plane.decide(kClient, kServer, 0, 4.0).drop);
}

TEST(Bus, FaultPlaneDropsAndCounts) {
  MessageBus bus;
  FaultConfig config;
  config.loss_probability = 1.0;
  bus.set_faults(config);
  int received = 0;
  bus.attach(kServer, [&](const Datagram&, net::SimTime) { ++received; });
  for (int i = 0; i < 10; ++i) {
    bus.send(kClient, kServer, Proto::kUdp, {1}, 0.0, 0.1);
  }
  bus.run_until(1.0);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().sent, 10u);
  EXPECT_EQ(bus.stats().lost, 10u);
  EXPECT_EQ(bus.stats().delivered, 0u);
}

TEST(Bus, JitterDelaysButDelivers) {
  MessageBus bus;
  FaultConfig config;
  config.jitter_max_seconds = 0.5;
  bus.set_faults(config);
  std::vector<double> arrivals;
  bus.attach(kServer, [&](const Datagram&, net::SimTime now) {
    arrivals.push_back(now);
  });
  for (int i = 0; i < 20; ++i) {
    bus.send(kClient, kServer, Proto::kUdp,
             {static_cast<std::uint8_t>(i)}, 0.0, 0.1);
  }
  bus.run_until(5.0);
  ASSERT_EQ(arrivals.size(), 20u);
  bool any_jittered = false;
  for (double t : arrivals) {
    EXPECT_GE(t, 0.1 - 1e-12);
    EXPECT_LE(t, 0.6 + 1e-12);
    any_jittered |= t > 0.1 + 1e-12;
  }
  EXPECT_TRUE(any_jittered);
}

TEST(Bus, FaultedRunIsRepeatable) {
  FaultConfig config;
  config.loss_probability = 0.3;
  config.jitter_max_seconds = 0.2;
  config.reorder_probability = 0.2;
  config.reorder_window_seconds = 0.3;
  auto run = [&] {
    MessageBus bus;
    bus.set_faults(config);
    std::vector<int> order;
    bus.attach(kServer, [&](const Datagram& d, net::SimTime) {
      order.push_back(d.payload[0]);
    });
    for (int i = 0; i < 50; ++i) {
      bus.send(kClient, kServer, Proto::kUdp,
               {static_cast<std::uint8_t>(i)}, 0.01 * i, 0.1);
    }
    bus.run_until(10.0);
    return order;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 50u);  // p=0.3 over 50 sends: some loss, surely
}

}  // namespace
}  // namespace netclients::netsim
