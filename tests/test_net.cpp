// Unit + property tests for the net substrate: addresses, prefixes, the
// radix trie, disjoint prefix sets, geodesy, and the deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "net/geo.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_set.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "net/zipf.h"

namespace netclients::net {
namespace {

// ---------------------------------------------------------------- Ipv4Addr

TEST(Ipv4Addr, ParsesDottedQuad) {
  auto addr = Ipv4Addr::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xC0000201u);
  EXPECT_EQ(addr->to_string(), "192.0.2.1");
}

TEST(Ipv4Addr, ParsesBoundaryValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

struct BadAddrCase {
  const char* text;
};
class Ipv4ParseRejects : public ::testing::TestWithParam<BadAddrCase> {};

TEST_P(Ipv4ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv4Addr::parse(GetParam().text).has_value())
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv4ParseRejects,
    ::testing::Values(BadAddrCase{""}, BadAddrCase{"1.2.3"},
                      BadAddrCase{"1.2.3.4.5"}, BadAddrCase{"256.1.1.1"},
                      BadAddrCase{"1.2.3.4 "}, BadAddrCase{" 1.2.3.4"},
                      BadAddrCase{"1..3.4"}, BadAddrCase{"a.b.c.d"},
                      BadAddrCase{"1.2.3.-4"}, BadAddrCase{"1.2.3.4x"}));

TEST(Ipv4Addr, Slash24Index) {
  EXPECT_EQ(Ipv4Addr::parse("10.1.2.3")->slash24_index(),
            (10u << 16) | (1u << 8) | 2u);
}

// ------------------------------------------------------------------ Prefix

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p(*Ipv4Addr::parse("10.1.2.3"), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseRoundTrip) {
  auto p = Prefix::parse("203.0.113.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "203.0.113.0/24");
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("1.2.3.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.0/").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.0").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.0/2x").has_value());
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix::mask(0), 0u);
  EXPECT_EQ(Prefix::mask(8), 0xFF000000u);
  EXPECT_EQ(Prefix::mask(24), 0xFFFFFF00u);
  EXPECT_EQ(Prefix::mask(32), 0xFFFFFFFFu);
}

TEST(Prefix, Containment) {
  const Prefix wide = *Prefix::parse("10.0.0.0/8");
  const Prefix narrow = *Prefix::parse("10.1.2.0/24");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
  EXPECT_TRUE(wide.contains(*Ipv4Addr::parse("10.255.0.1")));
  EXPECT_FALSE(wide.contains(*Ipv4Addr::parse("11.0.0.1")));
}

TEST(Prefix, DisjointPrefixesDoNotOverlap) {
  const Prefix a = *Prefix::parse("10.0.0.0/9");
  const Prefix b = *Prefix::parse("10.128.0.0/9");
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Prefix, Slash24Count) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/16")->slash24_count(), 256u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/24")->slash24_count(), 1u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/28")->slash24_count(), 1u);  // widened
  EXPECT_EQ(Prefix::parse("0.0.0.0/0")->slash24_count(), 1u << 24);
}

TEST(Prefix, LastAddress) {
  EXPECT_EQ(Prefix::parse("10.1.0.0/16")->last_address().to_string(),
            "10.1.255.255");
}

TEST(Prefix, WidenTo) {
  const Prefix p = *Prefix::parse("10.1.2.0/24");
  EXPECT_EQ(p.widen_to(16).to_string(), "10.1.0.0/16");
  EXPECT_EQ(p.widen_to(24), p);
}

TEST(Prefix, OrderingPlacesCoverBeforeCovered) {
  const Prefix wide = *Prefix::parse("10.0.0.0/8");
  const Prefix narrow = *Prefix::parse("10.0.0.0/24");
  EXPECT_LT(wide, narrow);
}

// Property sweep: for random prefixes, containment is consistent with
// address membership of base and last address.
class PrefixProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixProperty, ContainmentMatchesAddressRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Prefix a(Ipv4Addr(static_cast<std::uint32_t>(rng())),
                   static_cast<std::uint8_t>(rng.below(25)));
    const Prefix b(Ipv4Addr(static_cast<std::uint32_t>(rng())),
                   static_cast<std::uint8_t>(rng.below(25)));
    const bool by_range = a.base().value() <= b.base().value() &&
                          b.last_address().value() <=
                              a.last_address().value();
    EXPECT_EQ(a.contains(b), by_range)
        << a.to_string() << " vs " << b.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// -------------------------------------------------------------- PrefixTrie

TEST(PrefixTrie, LongestMatchPicksMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  auto match = trie.longest_match(*Ipv4Addr::parse("10.1.2.3"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->second, 24);
  match = trie.longest_match(*Ipv4Addr::parse("10.1.3.4"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->second, 16);
  match = trie.longest_match(*Ipv4Addr::parse("10.9.9.9"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->second, 8);
  EXPECT_FALSE(trie.longest_match(*Ipv4Addr::parse("11.0.0.1")));
}

TEST(PrefixTrie, ShortestMatchPicksLeastSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  auto match = trie.shortest_match(*Ipv4Addr::parse("10.1.2.3"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->second, 8);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 2));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 2);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(), 0);
  EXPECT_TRUE(trie.covers(Ipv4Addr(0)));
  EXPECT_TRUE(trie.covers(Ipv4Addr(~0u)));
}

TEST(PrefixTrie, ForEachVisitsInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("20.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(*Prefix::parse("10.5.0.0/16"), 3);
  std::vector<Prefix> seen;
  trie.for_each([&](Prefix p, int) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  Rng rng(99);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> inserted;
  for (int i = 0; i < 500; ++i) {
    Prefix p(Ipv4Addr(static_cast<std::uint32_t>(rng())),
             static_cast<std::uint8_t>(8 + rng.below(17)));
    if (trie.insert(p, inserted.size())) inserted.push_back(p);
  }
  for (int i = 0; i < 500; ++i) {
    const Ipv4Addr addr(static_cast<std::uint32_t>(rng()));
    // Linear reference: most specific containing prefix.
    const Prefix* best = nullptr;
    for (const auto& p : inserted) {
      if (p.contains(addr) && (!best || p.length() > best->length())) {
        best = &p;
      }
    }
    auto match = trie.longest_match(addr);
    ASSERT_EQ(match.has_value(), best != nullptr);
    if (best) {
      EXPECT_EQ(match->first, *best);
    }
  }
}

// -------------------------------------------------------- DisjointPrefixSet

TEST(DisjointPrefixSet, CoveredInsertIsNoop) {
  DisjointPrefixSet set;
  EXPECT_TRUE(set.insert(*Prefix::parse("10.0.0.0/16")));
  EXPECT_FALSE(set.insert(*Prefix::parse("10.0.5.0/24")));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.slash24_upper_bound(), 256u);
}

TEST(DisjointPrefixSet, CoveringInsertAbsorbs) {
  DisjointPrefixSet set;
  set.insert(*Prefix::parse("10.0.1.0/24"));
  set.insert(*Prefix::parse("10.0.9.0/24"));
  EXPECT_EQ(set.size(), 2u);
  set.insert(*Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.slash24_upper_bound(), 256u);
}

TEST(DisjointPrefixSet, IntersectsDetectsBothDirections) {
  DisjointPrefixSet set;
  set.insert(*Prefix::parse("10.0.1.0/24"));
  EXPECT_TRUE(set.intersects(*Prefix::parse("10.0.0.0/16")));  // contains it
  EXPECT_TRUE(set.intersects(*Prefix::parse("10.0.1.0/24")));
  EXPECT_FALSE(set.intersects(*Prefix::parse("10.0.2.0/24")));
}

TEST(DisjointPrefixSet, UpperBoundTracksDisjointSlash24s) {
  DisjointPrefixSet set;
  set.insert(*Prefix::parse("10.0.0.0/20"));  // 16
  set.insert(*Prefix::parse("10.1.0.0/22"));  // 4
  set.insert(*Prefix::parse("10.2.0.0/24"));  // 1
  EXPECT_EQ(set.slash24_upper_bound(), 21u);
  EXPECT_EQ(set.size(), 3u);
}

class DisjointSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointSetProperty, InvariantsHoldUnderRandomInserts) {
  Rng rng(GetParam());
  DisjointPrefixSet set;
  for (int i = 0; i < 300; ++i) {
    set.insert(Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng()) & 0x0FFFFFFF),
                      static_cast<std::uint8_t>(12 + rng.below(13))));
  }
  // Invariant 1: stored prefixes are pairwise disjoint.
  const auto prefixes = set.prefixes();
  for (std::size_t i = 0; i + 1 < prefixes.size(); ++i) {
    EXPECT_FALSE(prefixes[i].overlaps(prefixes[i + 1]))
        << prefixes[i].to_string() << " overlaps "
        << prefixes[i + 1].to_string();
  }
  // Invariant 2: the upper bound equals the sum of /24 counts.
  std::uint64_t total = 0;
  for (const auto& p : prefixes) total += p.slash24_count();
  EXPECT_EQ(total, set.slash24_upper_bound());
  // Invariant 3: every stored prefix is covered.
  for (const auto& p : prefixes) EXPECT_TRUE(set.covers(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointSetProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --------------------------------------------------------------------- geo

TEST(Geo, HaversineKnownDistances) {
  const LatLon nyc{40.7128, -74.0060};
  const LatLon london{51.5074, -0.1278};
  EXPECT_NEAR(haversine_km(nyc, london), 5570, 60);
  EXPECT_NEAR(haversine_km(nyc, nyc), 0, 1e-9);
}

TEST(Geo, HaversineSymmetric) {
  const LatLon a{10, 20}, b{-30, 140};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Geo, DestinationPointRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const LatLon origin{rng.uniform(-60, 60), rng.uniform(-179, 179)};
    const double distance = rng.uniform(1, 3000);
    const LatLon dest =
        destination_point(origin, rng.uniform(0, 360), distance);
    EXPECT_NEAR(haversine_km(origin, dest), distance, distance * 0.01 + 0.5);
  }
}

TEST(Geo, DestinationNormalizesLongitude) {
  const LatLon dest = destination_point({0, 179.5}, 90, 500);
  EXPECT_GE(dest.lon_deg, -180.0);
  EXPECT_LT(dest.lon_deg, 180.0);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(9);
  for (double mean : {0.5, 4.0, 100.0}) {
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, ParetoExceedsScale) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.0), 3.0);
}

TEST(Rng, StableSeedOrderSensitive) {
  EXPECT_NE(stable_seed(1, 2, 3), stable_seed(1, 3, 2));
  EXPECT_EQ(stable_seed(1, 2, 3), stable_seed(1, 2, 3));
}

TEST(Rng, StableHashIsStable) {
  // Values locked in: simulation decisions must not change across runs or
  // platforms.
  EXPECT_EQ(stable_hash("www.google.com"), stable_hash("www.google.com"));
  EXPECT_NE(stable_hash("a"), stable_hash("b"));
}

// -------------------------------------------------------------------- zipf

TEST(Zipf, RankZeroMostLikely) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(50));
}

TEST(Zipf, SampleFrequenciesFollowPmf) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(12);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int rank = 0; rank < 10; ++rank) {
    EXPECT_NEAR(counts[rank] / static_cast<double>(n), zipf.pmf(rank), 0.01);
  }
}

}  // namespace
}  // namespace netclients::net
