// Observability-layer suite (labels: determinism, tsan): registry
// metrics, histogram bucket-boundary edge cases, shard-ordered delta
// merging (byte-identical exported JSON serial vs 8 threads), exporter
// round-trip parsing, schema validation, and the --metrics-out plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/exec/exec.h"
#include "core/obs/export.h"
#include "core/obs/obs.h"

namespace netclients::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Obs, CounterAccumulatesAndResets) {
  Registry registry;
  Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&registry.counter("test.counter"), &c);  // stable identity
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Obs, GaugeKeepsLastValue) {
  Registry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(Obs, HistogramBucketBoundariesAreInclusiveUpperEdges) {
  Registry registry;
  Histogram& h = registry.histogram("test.hist", {1.0, 2.0, 4.0});
  // Exactly on an edge lands in that edge's bucket (le semantics)...
  h.observe(1.0);
  // ...just above an edge spills into the next bucket...
  h.observe(1.0000001);
  // ...the last finite edge is still inclusive...
  h.observe(4.0);
  // ...everything above goes to the overflow bucket...
  h.observe(4.5);
  // ...and values below the first edge (negatives included) go to bucket 0.
  h.observe(-7.0);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.0000001 + 4.0 + 4.5 - 7.0);
}

TEST(Obs, HistogramWithNoFiniteEdgesHasOnlyOverflow) {
  Registry registry;
  Histogram& h = registry.histogram("test.overflow_only", {});
  h.observe(123.0);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1}));
}

TEST(Obs, HistogramReregistrationKeepsOriginalBounds) {
  Registry registry;
  Histogram& a = registry.histogram("test.hist", {1.0, 2.0});
  Histogram& b = registry.histogram("test.hist", {9.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Obs, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zzz");
  registry.counter("aaa");
  registry.counter("mmm");
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "aaa");
  EXPECT_EQ(snap.counters[1].first, "mmm");
  EXPECT_EQ(snap.counters[2].first, "zzz");
}

TEST(Obs, StageSpanRecordsCountAndElapsed) {
  Registry registry;
  { StageSpan span("test.stage", registry); }
  { StageSpan span("test.stage", registry); }
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "test.stage");
  EXPECT_EQ(snap.spans[0].count, 2u);
  EXPECT_GE(snap.spans[0].total_ms, 0.0);
}

// ----------------------------------------------------- shard-merge discipline

TEST(Obs, ShardDeltaMergeMatchesDirectObservation) {
  Registry registry;
  Counter& c = registry.counter("test.counter");
  Histogram& h = registry.histogram("test.hist", {1.0, 10.0});
  ShardDelta delta;
  delta.add(c, 3);
  delta.add(c);  // coalesces with the first entry
  delta.observe(h, 0.5);
  delta.observe(h, 5.0);
  delta.observe(h, 50.0);
  EXPECT_EQ(c.value(), 0u);  // buffered, not yet applied
  delta.merge();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
}

TEST(Obs, ShardOrderedMergeIsByteIdenticalAcrossThreadCounts) {
  // Ill-conditioned double sums: per-value accumulation order changes the
  // last bits, so byte-identical JSON proves the shard-ordered merge
  // replays the serial sequence exactly.
  const auto run = [](int threads) {
    Registry registry;
    Histogram& h =
        registry.histogram("test.values", {1e-8, 1e-4, 1.0, 1e4});
    Counter& c = registry.counter("test.count");
    auto deltas =
        core::exec::parallel_map(64, threads, [&](std::size_t shard) {
          ShardDelta delta;
          net::Rng rng = core::exec::shard_rng(0xD157, shard);
          for (int i = 0; i < 100; ++i) {
            delta.observe(h, rng.uniform() * std::pow(10.0, i % 19 - 9));
            delta.add(c);
          }
          return delta;
        });
    for (ShardDelta& delta : deltas) delta.merge();  // shard order
    return to_json(registry.snapshot());
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"test.values\""), std::string::npos);
}

// ---------------------------------------------------------------- exporters

Snapshot example_snapshot() {
  Registry registry;
  registry.counter("probe.sent").add(12345678901234ull);
  registry.gauge("world.scale").set(0.015625);
  Histogram& h = registry.histogram("probe.distance_km", {100.0, 1000.0});
  h.observe(50.0);
  h.observe(250.5);
  h.observe(5000.0);
  registry.record_span("stage.one", 12.5);
  registry.record_span("stage.one", 7.25);
  return registry.snapshot();
}

TEST(Obs, JsonRoundTripsExactly) {
  const Snapshot original = example_snapshot();
  const std::string json = to_json(original);
  const auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
  // Serialising the parsed snapshot reproduces the bytes too.
  EXPECT_EQ(to_json(*parsed), json);
}

TEST(Obs, JsonValidates) {
  const std::string json = to_json(example_snapshot());
  EXPECT_EQ(validate_metrics_json(json), "");
}

TEST(Obs, EmptyRegistryStillValidates) {
  Registry registry;
  const std::string json = to_json(registry.snapshot());
  EXPECT_EQ(validate_metrics_json(json), "");
}

TEST(Obs, ValidationCatchesCorruption) {
  const std::string json = to_json(example_snapshot());
  EXPECT_NE(validate_metrics_json("{"), "");
  EXPECT_NE(validate_metrics_json("[]"), "");
  EXPECT_NE(validate_metrics_json("{\"schema\": \"other.v9\"}"), "");
  // Bucket counts no longer summing to the histogram count is caught.
  std::string broken = json;
  const auto pos = broken.find("\"count\": 3");
  ASSERT_NE(pos, std::string::npos);
  broken.replace(pos, 10, "\"count\": 4");
  EXPECT_NE(validate_metrics_json(broken), "");
}

TEST(Obs, TiminglessExportDropsSpanDurationsOnly) {
  const Snapshot snapshot = example_snapshot();
  ExportOptions options;
  options.include_timings = false;
  const std::string json = to_json(snapshot, options);
  EXPECT_EQ(json.find("total_ms"), std::string::npos);
  EXPECT_NE(json.find("\"stage.one\""), std::string::npos);
  EXPECT_EQ(validate_metrics_json(json), "");
  const auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].count, 2u);
  EXPECT_DOUBLE_EQ(parsed->spans[0].total_ms, 0.0);
}

TEST(Obs, CsvExportContainsOneRowPerScalar) {
  const std::string csv = to_csv(example_snapshot());
  std::istringstream lines(csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0], "kind,name,field,value");
  EXPECT_NE(csv.find("counter,probe.sent,value,12345678901234"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,probe.distance_km,le=+inf,1"),
            std::string::npos);
  EXPECT_NE(csv.find("span,stage.one,count,2"), std::string::npos);
}

// ------------------------------------------------------------- CLI plumbing

TEST(Obs, MetricsOutGuardStripsFlagAndWritesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_guard_test.json")
          .string();
  std::filesystem::remove(path);
  {
    std::string a0 = "prog", a1 = "--metrics-out", a2 = path, a3 = "64";
    char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), nullptr};
    int argc = 4;
    MetricsOutGuard guard(&argc, argv);
    EXPECT_EQ(guard.path(), path);
    // Positionals keep their places once the flag is stripped.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "64");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(validate_metrics_json(buffer.str()), "");
  std::filesystem::remove(path);
}

TEST(Obs, MetricsOutGuardAcceptsEqualsForm) {
  std::string a0 = "prog", a1 = "--metrics-out=/dev/null";
  char* argv[] = {a0.data(), a1.data(), nullptr};
  int argc = 2;
  MetricsOutGuard guard(&argc, argv);
  EXPECT_EQ(guard.path(), "/dev/null");
  EXPECT_EQ(argc, 1);
}

}  // namespace
}  // namespace netclients::obs
