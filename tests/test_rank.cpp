// Tests for the relative activity ranker (§6 future work implemented):
// renewal-model inversion, monotonicity against planted rates, and the
// end-to-end ranking of a campaign's active prefixes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>

#include "anycast/vantage.h"
#include "core/rank/activity_rank.h"
#include "sim/activity.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

// Activity model with a per-block planted rate keyed by the block base.
class PlantedActivity final : public googledns::ClientActivityModel {
 public:
  void plant(net::Prefix block, double rate) {
    rates_[block.base().value()] = rate;
  }
  double arrival_rate(anycast::PopId, const dns::DnsName&,
                      net::Prefix block) const override {
    auto it = rates_.find(block.base().value());
    return it == rates_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_map<std::uint32_t, double> rates_;
};

struct Fixture {
  Fixture()
      : pops(anycast::PopTable::google_default()), catchment(&pops, 42) {
    for (const sim::DomainInfo& d : sim::default_domains()) {
      dnssrv::ZoneConfig zone;
      zone.name = d.name;
      zone.ttl_seconds = d.ttl_seconds;
      zone.min_scope = 24;  // 1 block per scope: rates stay planted
      zone.max_scope = 24;
      auth.add_zone(zone);
      domains.push_back(d);
    }
    gdns = std::make_unique<googledns::GooglePublicDns>(
        &pops, &catchment, &auth, googledns::GoogleDnsConfig{}, &activity);
  }

  anycast::PopTable pops;
  anycast::CatchmentModel catchment;
  dnssrv::AuthoritativeServer auth;
  PlantedActivity activity;
  std::vector<sim::DomainInfo> domains;
  std::unique_ptr<googledns::GooglePublicDns> gdns;
};

TEST(Rank, ZeroRatePrefixScoresZero) {
  Fixture f;
  ActivityRanker ranker(f.gdns.get(), f.domains);
  const auto row =
      ranker.rank_prefix(*net::Prefix::parse("10.0.0.0/24"), 0, 0);
  EXPECT_EQ(row.estimated_rate, 0);
  for (double rate : row.hit_rate) EXPECT_EQ(rate, 0);
}

TEST(Rank, EstimateGrowsWithPlantedRate) {
  Fixture f;
  const net::Prefix slow = *net::Prefix::parse("10.0.0.0/24");
  const net::Prefix medium = *net::Prefix::parse("10.0.1.0/24");
  const net::Prefix fast = *net::Prefix::parse("10.0.2.0/24");
  f.activity.plant(slow, 0.0005);
  f.activity.plant(medium, 0.004);
  f.activity.plant(fast, 0.03);
  RankOptions options;
  options.rounds = 48;
  ActivityRanker ranker(f.gdns.get(), f.domains, options);
  const double est_slow = ranker.rank_prefix(slow, 0, 0).estimated_rate;
  const double est_medium = ranker.rank_prefix(medium, 0, 0).estimated_rate;
  const double est_fast = ranker.rank_prefix(fast, 0, 0).estimated_rate;
  EXPECT_LT(est_slow, est_medium);
  EXPECT_LT(est_medium, est_fast);
}

TEST(Rank, InversionRecoversRateWithinFactor) {
  Fixture f;
  const net::Prefix target = *net::Prefix::parse("10.0.0.0/24");
  const double planted = 0.003;  // per (pop, block), q/s
  f.activity.plant(target, planted);
  RankOptions options;
  options.rounds = 96;
  ActivityRanker ranker(f.gdns.get(), f.domains, options);
  const auto row = ranker.rank_prefix(target, 0, 0);
  EXPECT_GT(row.estimated_rate, planted / 3);
  EXPECT_LT(row.estimated_rate, planted * 3);
}

TEST(Rank, SaturatedPrefixStillFinite) {
  Fixture f;
  const net::Prefix hot = *net::Prefix::parse("10.0.0.0/24");
  f.activity.plant(hot, 50.0);  // always cached
  ActivityRanker ranker(f.gdns.get(), f.domains);
  const auto row = ranker.rank_prefix(hot, 0, 0);
  EXPECT_TRUE(std::isfinite(row.estimated_rate));
  EXPECT_GT(row.estimated_rate, 0);
  for (double rate : row.hit_rate) EXPECT_GT(rate, 0.9);
}

TEST(Rank, DayNightContrastSeparatesHumanFromFlat) {
  // A diurnal world: plant two /24s at the same longitude, one human-like
  // (oscillating via a custom model) and one flat, and check the
  // phase-locked contrast separates them. We reuse the real world model
  // for an end-to-end version of this in bench_diurnal; here we drive the
  // Google front end with the sim's own activity model.
  sim::WorldConfig config;
  config.scale = 1.0 / 512;
  config.diurnal_amplitude = 0.65;
  const sim::World world = sim::World::generate(config);
  sim::WorldActivityModel activity(&world);
  googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                  &world.authoritative(),
                                  googledns::GoogleDnsConfig{}, &activity);
  ActivityRanker ranker(&gdns, world.domains());

  // A busy human block and a busy bot block.
  const sim::Slash24Block* human = nullptr;
  const sim::Slash24Block* bot = nullptr;
  for (const sim::Slash24Block& block : world.blocks()) {
    if (!human && block.users > 300 &&
        world.ases()[block.as_index].google_dns_share > 0.25) {
      human = &block;
    }
    if ((!bot || block.bot_users > bot->bot_users) && block.bot_users > 5) {
      bot = &block;
    }
  }
  ASSERT_NE(human, nullptr);
  ASSERT_NE(bot, nullptr);
  const double human_contrast = ranker.day_night_contrast(
      net::Prefix::from_slash24_index(human->index), human->gdns_pop, 0,
      human->location.lon_deg, 16);
  const double bot_contrast = ranker.day_night_contrast(
      net::Prefix::from_slash24_index(bot->index), bot->gdns_pop, 0,
      bot->location.lon_deg, 16);
  EXPECT_GT(human_contrast, 0.3);
  EXPECT_LT(std::fabs(bot_contrast), 0.3);
}

TEST(Rank, StationaryWorldHasNoContrast) {
  sim::WorldConfig config;
  config.scale = 1.0 / 2048;  // diurnal_amplitude defaults to 0
  const sim::World world = sim::World::generate(config);
  sim::WorldActivityModel activity(&world);
  googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                  &world.authoritative(),
                                  googledns::GoogleDnsConfig{}, &activity);
  ActivityRanker ranker(&gdns, world.domains());
  const sim::Slash24Block* busy = nullptr;
  for (const sim::Slash24Block& block : world.blocks()) {
    if (block.users > 300) {
      busy = &block;
      break;
    }
  }
  ASSERT_NE(busy, nullptr);
  const double contrast = ranker.day_night_contrast(
      net::Prefix::from_slash24_index(busy->index), busy->gdns_pop, 0,
      busy->location.lon_deg, 16);
  EXPECT_LT(std::fabs(contrast), 0.35);
}

TEST(Rank, EndToEndRankingCorrelatesWithTruth) {
  sim::WorldConfig config;
  config.scale = 1.0 / 1024;
  const sim::World world = sim::World::generate(config);
  sim::WorldActivityModel activity(&world);
  googledns::GooglePublicDns gdns(&world.pops(), &world.catchment(),
                                  &world.authoritative(),
                                  googledns::GoogleDnsConfig{}, &activity);
  ProbeEnvironment probe_env;
  probe_env.authoritative = &world.authoritative();
  probe_env.google_dns = &gdns;
  probe_env.geodb = &world.geodb();
  probe_env.vantage_points = anycast::default_vantage_fleet();
  probe_env.domains = world.domains();
  probe_env.slash24_begin = 1u << 16;
  probe_env.slash24_end = world.address_space_end();
  CacheProbeCampaign campaign(std::move(probe_env));
  const auto artifacts = campaign.run();
  const auto& result = artifacts.result;
  ASSERT_GT(result.active.size(), 20u);

  ActivityRanker ranker(&gdns, world.domains());
  const auto ranked = ranker.rank(result, artifacts.pops);
  ASSERT_GT(ranked.size(), 20u);
  // Sorted descending by estimate.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].estimated_rate, ranked[i].estimated_rate);
  }
  // Top-quartile prefixes should hold more true activity than the bottom
  // quartile.
  auto truth_of = [&](const PrefixActivity& row) {
    double rate = 0;
    const auto [first, last] = world.block_range(row.prefix);
    for (std::size_t b = first; b < last; ++b) {
      rate += world.gdns_rate(world.blocks()[b], 0);
    }
    return rate;
  };
  const std::size_t quarter = ranked.size() / 4;
  double top = 0, bottom = 0;
  for (std::size_t i = 0; i < quarter; ++i) {
    top += truth_of(ranked[i]);
    bottom += truth_of(ranked[ranked.size() - 1 - i]);
  }
  EXPECT_GT(top, bottom * 2);
}

}  // namespace
}  // namespace netclients::core
