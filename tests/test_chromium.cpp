// Tests for the DNS-logs (Chromium-counting) pipeline: signature matching,
// the count-min sketch, collision filtering, sampling-aware counting, and
// accuracy against planted ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/chromium/chromium.h"
#include "core/chromium/sketch.h"
#include "net/rng.h"
#include "roots/root_server.h"
#include "roots/trace.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

dns::DnsName name_of(const char* text) { return *dns::DnsName::parse(text); }

// ------------------------------------------------------------- signature

struct SignatureCase {
  const char* name;
  bool matches;
};

class Signature : public ::testing::TestWithParam<SignatureCase> {};

TEST_P(Signature, Matches) {
  EXPECT_EQ(matches_chromium_signature(name_of(GetParam().name)),
            GetParam().matches)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Signature,
    ::testing::Values(SignatureCase{"sdhfjssf", true},      // the paper's ex.
                      SignatureCase{"abcdefg", true},       // 7 chars (min)
                      SignatureCase{"abcdefghijklmno", true},  // 15 (max)
                      SignatureCase{"abcdef", false},          // 6: too short
                      SignatureCase{"abcdefghijklmnop", false},  // 16: long
                      SignatureCase{"columbia", true},  // word-shaped: only
                                                        // the collision
                                                        // filter rejects it
                      SignatureCase{"sdhfjssf.com", false},  // has TLD
                      SignatureCase{"abc1defg", false},      // digit
                      SignatureCase{"abc-defg", false}));    // hyphen

// ------------------------------------------------------------------ sketch

TEST(Sketch, NeverUnderestimates) {
  CountMinSketch sketch(1 << 10, 4, 1);
  net::Rng rng(1);
  std::unordered_map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.below(800);
    sketch.add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count);
  }
}

TEST(Sketch, AccurateWhenUnderLoaded) {
  CountMinSketch sketch(1 << 16, 4, 2);
  for (std::uint64_t key = 0; key < 100; ++key) {
    for (std::uint64_t i = 0; i <= key % 5; ++i) sketch.add(key * 7919);
  }
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(sketch.estimate(key * 7919), key % 5 + 1);
  }
}

TEST(Sketch, ClearResets) {
  CountMinSketch sketch(1 << 8, 2, 3);
  sketch.add(42, 10);
  EXPECT_GE(sketch.estimate(42), 10u);
  sketch.clear();
  EXPECT_EQ(sketch.estimate(42), 0u);
}

// ----------------------------------------------------------------- counter

roots::TraceRecord record(std::uint32_t source, const char* qname,
                          double t = 0, char letter = 'j') {
  roots::TraceRecord rec;
  rec.source = net::Ipv4Addr(source);
  rec.qname = name_of(qname);
  rec.timestamp = t;
  rec.root_letter = letter;
  return rec;
}

TEST(Counter, CountsUniqueSignatureNamesPerSource) {
  std::vector<roots::TraceRecord> trace = {
      record(0x0A000001, "qwertzuiop", 10),
      record(0x0A000001, "asdfghjkl", 20),
      record(0x0A000002, "yxcvbnmqwe", 30),
      record(0x0A000002, "www.example.com", 40),  // not single-label
      record(0x0A000002, "abc", 50),              // too short
  };
  const ChromiumCounter counter;
  const auto result = counter.process(trace);
  EXPECT_EQ(result.records_scanned, 5u);
  EXPECT_EQ(result.signature_matches, 3u);
  EXPECT_EQ(result.rejected_collisions, 0u);
  EXPECT_DOUBLE_EQ(result.probes_by_resolver.at(0x0A000001), 2.0);
  EXPECT_DOUBLE_EQ(result.probes_by_resolver.at(0x0A000002), 1.0);
}

TEST(Counter, CollisionThresholdRejectsRepeatedNames) {
  std::vector<roots::TraceRecord> trace;
  // "columbia" queried 50 times in one day — typo junk, must be filtered.
  for (int i = 0; i < 50; ++i) {
    trace.push_back(record(0x0A000001, "columbia", i * 60.0));
  }
  // One genuine random probe.
  trace.push_back(record(0x0A000001, "qpwoeiruty", 100));
  const ChromiumCounter counter;
  const auto result = counter.process(trace);
  EXPECT_EQ(result.rejected_collisions, 50u);
  EXPECT_DOUBLE_EQ(result.probes_by_resolver.at(0x0A000001), 1.0);
}

TEST(Counter, ThresholdIsPerDay) {
  // The same name 3x on each of two days stays under the 7/day threshold.
  std::vector<roots::TraceRecord> trace;
  for (int day = 0; day < 2; ++day) {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(
          record(0x0A000001, "columbia", day * 86400.0 + i * 60));
    }
  }
  const ChromiumCounter counter;
  const auto result = counter.process(trace);
  EXPECT_EQ(result.rejected_collisions, 0u);
  EXPECT_DOUBLE_EQ(result.probes_by_resolver.at(0x0A000001), 6.0);
}

TEST(Counter, SampleRateScalesCountsAndThreshold) {
  std::vector<roots::TraceRecord> trace = {
      record(1, "qpwoeiruty", 0),
      record(1, "mznxbcvlak", 9),
  };
  ChromiumOptions options;
  options.sample_rate = 1.0 / 64;
  const ChromiumCounter counter(options);
  const auto result = counter.process(trace);
  EXPECT_DOUBLE_EQ(result.probes_by_resolver.at(1), 128.0);
}

TEST(Counter, ToPrefixDatasetAggregatesBySlash24) {
  std::vector<roots::TraceRecord> trace = {
      record(0x0A000001, "qpwoeiruty"),
      record(0x0A000002, "mznxbcvlak"),  // same /24
      record(0x0B000001, "lskdjfhgqp"),  // different /24
  };
  const ChromiumCounter counter;
  const auto ds = counter.process(trace).to_prefix_dataset("DNS logs");
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.volume_of(0x0A0000), 2.0);
  EXPECT_DOUBLE_EQ(ds.volume_of(0x0B0000), 1.0);
}

TEST(Counter, EndToEndAccuracyAgainstPlantedTruth) {
  // Generate a small world's DITL unsampled and compare per-resolver
  // counts against the generator's ground truth (scaled by the captured
  // letter fraction, which the pipeline cannot know).
  sim::WorldConfig config;
  config.scale = 1.0 / 8192;
  const sim::World world = sim::World::generate(config);
  const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
  sim::DitlOptions ditl;
  const ChromiumCounter counter;
  const auto result = counter.process(
      [&](const std::function<void(const roots::TraceRecord&)>& emit) {
        sim::generate_ditl(world, roots, ditl, emit);
      });
  const auto truth = sim::chromium_ground_truth(world);
  // Aggregate totals: captured counts should be a stable fraction (letter
  // capture ~40-55%) of the true probe volume over 2 days.
  double truth_total = 0;
  for (const auto& [addr, per_day] : truth) truth_total += per_day * 2;
  double counted_total = 0;
  for (const auto& [addr, count] : result.probes_by_resolver) {
    counted_total += count;
  }
  ASSERT_GT(truth_total, 0);
  const double capture_fraction = counted_total / truth_total;
  EXPECT_GT(capture_fraction, 0.30);
  EXPECT_LT(capture_fraction, 0.70);
  // Per-resolver: busy resolvers are detected unless their preferred root
  // letters all fall outside the usable DITL set — the paper's own caveat
  // that DITL "does not contain all root letters" (§3.2.2). About
  // (7/13)^3 ≈ 16% of resolvers are invisible that way.
  int busy = 0, detected = 0;
  for (const auto& [addr, per_day] : truth) {
    if (per_day > 20) {
      ++busy;
      detected += result.probes_by_resolver.contains(addr);
    }
  }
  ASSERT_GT(busy, 5);
  EXPECT_GT(static_cast<double>(detected) / busy, 0.75);
  EXPECT_LT(static_cast<double>(detected) / busy, 1.0);
}

TEST(Counter, ProcessFromTraceFileRoundTrip) {
  std::vector<roots::TraceRecord> trace = {
      record(1, "qpwoeiruty", 0),
      record(2, "mznxbcvlak", 5),
  };
  const std::string path = "chromium_trace_test.bin";
  ASSERT_TRUE(roots::TraceFile::write(path, trace));
  std::vector<roots::TraceRecord> loaded;
  ASSERT_TRUE(roots::TraceFile::read(path, &loaded));
  const ChromiumCounter counter;
  const auto direct = counter.process(trace);
  const auto via_file = counter.process(loaded);
  EXPECT_EQ(direct.probes_by_resolver, via_file.probes_by_resolver);
  std::remove(path.c_str());
}

TEST(Counter, ProcessFileMatchesInMemoryAndReportsNoSkips) {
  std::vector<roots::TraceRecord> trace = {
      record(1, "qpwoeiruty", 0),
      record(2, "mznxbcvlak", 5),
  };
  const std::string path = "chromium_process_file_test.bin";
  ASSERT_TRUE(roots::TraceFile::write(path, trace));
  const ChromiumCounter counter;
  const auto direct = counter.process(trace);
  const auto via_file = counter.process_file(path);
  ASSERT_TRUE(via_file.has_value());
  EXPECT_EQ(direct.probes_by_resolver, via_file->probes_by_resolver);
  EXPECT_EQ(via_file->records_skipped, 0u);
  std::remove(path.c_str());
}

TEST(Counter, ProcessFileSkipsAndCountsCorruptTail) {
  std::vector<roots::TraceRecord> trace = {
      record(1, "qpwoeiruty", 0),
      record(2, "mznxbcvlak", 5),
      record(3, "alskdjfhgq", 9),
  };
  const std::string path = "chromium_corrupt_tail_test.bin";
  ASSERT_TRUE(roots::TraceFile::write(path, trace));
  // Chop into the last record: the scan must keep the intact prefix.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 3);
  const ChromiumCounter counter;
  const auto result = counter.process_file(path);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records_scanned, 2u);
  EXPECT_EQ(result->records_skipped, 1u);
  std::remove(path.c_str());
}

TEST(Counter, ProcessFileRejectsUnreadableFile) {
  const ChromiumCounter counter;
  EXPECT_FALSE(counter.process_file("no_such_trace.bin").has_value());
}

// -------------------------------------------------------- collision study

TEST(CollisionStudy, MatchesAnalyticAtPaperScale) {
  const auto study = study_collisions(25e9, 7, 100000, 5);
  // The paper: random names collide fewer than 7 times per day with 99%
  // probability. Our analytic and Monte-Carlo estimates agree and exceed
  // that bar.
  EXPECT_GT(study.p_name_below_threshold, 0.99);
  EXPECT_NEAR(study.observed_p_below, study.p_name_below_threshold, 0.01);
}

TEST(CollisionStudy, MoreTrafficMoreCollisions) {
  const auto low = study_collisions(1e9, 7, 10000, 6);
  const auto high = study_collisions(400e9, 7, 10000, 6);
  EXPECT_GT(low.p_name_below_threshold, high.p_name_below_threshold);
  EXPECT_GT(high.expected_per_name, low.expected_per_name);
}

}  // namespace
}  // namespace netclients::core
