// Tests for the cache-probing pipeline: scope discovery, PoP discovery,
// service-radius calibration, the probing campaign, and active-prefix
// inference — validated against the simulator's ground truth at small
// scale.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "anycast/vantage.h"
#include "core/cacheprobe/cacheprobe.h"
#include "sim/activity.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

struct Pipeline {
  explicit Pipeline(double scale_denominator = 512,
                    CacheProbeOptions options = {}) {
    sim::WorldConfig config;
    config.scale = 1.0 / scale_denominator;
    world = sim::World::generate(config);
    activity = std::make_unique<sim::WorldActivityModel>(&world);
    gdns = std::make_unique<googledns::GooglePublicDns>(
        &world.pops(), &world.catchment(), &world.authoritative(),
        googledns::GoogleDnsConfig{}, activity.get());
    campaign = std::make_unique<CacheProbeCampaign>(environment(), options);
  }

  ProbeEnvironment environment() {
    ProbeEnvironment env;
    env.authoritative = &world.authoritative();
    env.google_dns = gdns.get();
    env.geodb = &world.geodb();
    env.vantage_points = anycast::default_vantage_fleet();
    env.domains = world.domains();
    env.slash24_begin = 1u << 16;
    env.slash24_end = world.address_space_end();
    return env;
  }

  sim::World world;
  std::unique_ptr<sim::WorldActivityModel> activity;
  std::unique_ptr<googledns::GooglePublicDns> gdns;
  std::unique_ptr<CacheProbeCampaign> campaign;
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

const CampaignArtifacts& full_run() {
  static const CampaignArtifacts run = pipeline().campaign->run();
  return run;
}

// Scope discovery is a kStageScopes run; one shared artifact covers every
// domain the scope tests inspect.
const std::vector<ProbeCandidate>& scopes(int domain_index) {
  static const CampaignArtifacts artifacts =
      pipeline().campaign->run(kStageScopes);
  return artifacts.scopes_by_domain[static_cast<std::size_t>(domain_index)];
}

// ----------------------------------------------------------- scope discovery

TEST(ScopeDiscovery, CandidatesCoverTheScannedSpace) {
  // Response scopes from a real authoritative are not perfectly aligned
  // (our topology clamp reproduces that), so consecutive candidates may
  // overlap slightly — but together they must cover every /24 scanned,
  // with strictly advancing ends.
  const auto& candidates = scopes(0);
  ASSERT_FALSE(candidates.empty());
  std::uint32_t covered_to = 1u << 16;
  for (const ProbeCandidate& c : candidates) {
    EXPECT_LE(c.scope.first_slash24_index(), covered_to)
        << "gap before " << c.scope.to_string();
    const std::uint32_t end =
        c.scope.first_slash24_index() +
        static_cast<std::uint32_t>(c.scope.slash24_count());
    EXPECT_GT(end, covered_to) << "non-advancing " << c.scope.to_string();
    covered_to = end;
  }
  EXPECT_GE(covered_to, pipeline().world.address_space_end());
}

TEST(ScopeDiscovery, CandidatesMostlyMatchAuthoritativeScopes) {
  const auto& candidates = scopes(1);
  const auto& domain = pipeline().world.domains()[1].name;
  std::size_t checked = 0, exact = 0;
  for (std::size_t i = 0; i < candidates.size(); i += 7) {
    const auto scope = pipeline().world.authoritative().scope_for(
        domain, candidates[i].scope, 0);
    ASSERT_TRUE(scope.has_value());
    ++checked;
    if (*scope == candidates[i].scope.length()) {
      ++exact;
    } else {
      // Mismatches only come from the announcement clamp, which always
      // makes the re-queried scope more specific.
      EXPECT_GT(*scope, candidates[i].scope.length());
    }
  }
  ASSERT_GT(checked, 50u);
  EXPECT_GT(static_cast<double>(exact) / checked, 0.9);
}

TEST(ScopeDiscovery, FewerCandidatesThanSlash24s) {
  // The whole point of the pre-pass: one query per scope, not per /24.
  const auto& candidates = scopes(0);
  const std::uint32_t slash24s =
      pipeline().world.address_space_end() - (1u << 16);
  EXPECT_LT(candidates.size(), slash24s);
}

TEST(ScopeDiscovery, WikipediaScopesWiderThanGoogle) {
  // Table 5's structural cause: Wikipedia answers /16-18, Google /20-24.
  const auto& google = scopes(0);
  const auto& wikipedia = scopes(sim::kDomainWikipedia);
  EXPECT_GT(google.size(), wikipedia.size() * 2);
}

// -------------------------------------------------------------- pop discovery

TEST(PopDiscovery, Reaches22Pops) {
  const auto& pops = full_run().pops;
  EXPECT_EQ(pops.probed_pops.size(), 22u);
  EXPECT_EQ(pops.vp_pop.size(), anycast::default_vantage_fleet().size());
}

TEST(PopDiscovery, RepresentativeVpActuallyReachesPop) {
  const auto& pops = full_run().pops;
  const auto fleet = anycast::default_vantage_fleet();
  for (const auto& [pop, vp_id] : pops.probed_pops) {
    const auto& vp = fleet[static_cast<std::size_t>(vp_id)];
    EXPECT_EQ(pipeline().gdns->pop_for(vp.location, vp.address.value()), pop);
  }
}

// ---------------------------------------------------------------- calibration

TEST(Calibration, RadiiWithinPhysicalBounds) {
  const auto& calibration = full_run().calibration;
  EXPECT_EQ(calibration.service_radius_km.size(), 22u);
  for (const auto& [pop, radius] : calibration.service_radius_km) {
    EXPECT_GT(radius, 0);
    EXPECT_LE(radius, 5524);  // the paper's max (Zurich fallback)
  }
}

TEST(Calibration, HitDistancesBelowRadiusForMost) {
  const auto& calibration = full_run().calibration;
  for (const auto& [pop, distances] : calibration.hit_distances_km) {
    if (distances.size() < 20) continue;
    const double radius = calibration.service_radius_km.at(pop);
    std::size_t within = 0;
    for (double km : distances) within += km <= radius;
    const double fraction =
        static_cast<double>(within) / static_cast<double>(distances.size());
    EXPECT_NEAR(fraction, 0.9, 0.08) << "PoP " << pop;
  }
}

// ------------------------------------------------------------------- campaign

TEST(Campaign, TcpProbesAreNotRateLimited) {
  EXPECT_EQ(full_run().result.rate_limited, 0u);
  EXPECT_GT(full_run().result.probes_sent, 1000u);
}

TEST(Campaign, HitsCarryPositiveReturnScope) {
  for (const CacheHit& hit : full_run().result.hits) {
    EXPECT_GT(hit.return_scope, 0);
    EXPECT_LE(hit.return_scope, 24);
    EXPECT_LE(hit.return_scope, hit.query_scope.length());
  }
}

TEST(Campaign, BoundsAreOrdered) {
  const auto& result = full_run().result;
  EXPECT_GT(result.slash24_lower_bound(), 0u);
  EXPECT_LE(result.slash24_lower_bound(), result.slash24_upper_bound());
}

TEST(Campaign, PerDomainSetsUnionIntoTotal) {
  const auto& result = full_run().result;
  for (const auto& domain_set : result.active_by_domain) {
    domain_set.for_each([&](net::Prefix p) {
      EXPECT_TRUE(result.active.intersects(p));
    });
  }
}

TEST(Campaign, HighPrecisionAgainstGroundTruth) {
  // <1% of hit scopes should lack any ground-truth client /24 (§4: 99.1%
  // of scopes contain at least one Microsoft-client /24).
  const auto& result = full_run().result;
  std::uint64_t scopes = 0, with_clients = 0;
  result.active.for_each([&](net::Prefix p) {
    ++scopes;
    const auto [first, last] = pipeline().world.block_range(p);
    for (std::size_t b = first; b < last; ++b) {
      if (pipeline().world.blocks()[b].clients() > 0) {
        ++with_clients;
        return;
      }
    }
  });
  ASSERT_GT(scopes, 50u);
  EXPECT_GT(static_cast<double>(with_clients) / scopes, 0.97);
}

TEST(Campaign, RecallOnBusyGoogleDnsBlocks) {
  // Blocks with many Google-DNS users at probed PoPs must be found.
  const auto& result = full_run().result;
  std::unordered_set<anycast::PopId> probed;
  for (const auto& [pop, vp] : full_run().pops.probed_pops) {
    probed.insert(pop);
  }
  std::size_t busy = 0, found = 0;
  for (const sim::Slash24Block& block : pipeline().world.blocks()) {
    if (block.users < 400 || !probed.contains(block.gdns_pop)) continue;
    const sim::AsEntry& as = pipeline().world.ases()[block.as_index];
    if (as.google_dns_share < 0.2) continue;
    if (pipeline().world.country_domain_multiplier(block.country, 0) < 0.5) {
      continue;
    }
    ++busy;
    found += result.active.covers(net::Prefix::from_slash24_index(
        block.index));
  }
  ASSERT_GT(busy, 20u);
  EXPECT_GT(static_cast<double>(found) / busy, 0.9);
}

TEST(Campaign, ExpandedDatasetMatchesUpperBound) {
  const auto& result = full_run().result;
  const PrefixDataset ds = result.to_prefix_dataset("cache probing");
  EXPECT_EQ(ds.size(), result.slash24_upper_bound());
}

TEST(ProbePolicy, DefaultsMatchThePaper) {
  // ProbePolicy is the single source of truth for per-probe behavior; the
  // loose aliases that used to shadow it on CacheProbeOptions are gone.
  const CacheProbeOptions defaults;
  EXPECT_EQ(defaults.probe.transport, googledns::Transport::kTcp);
  EXPECT_EQ(defaults.probe.redundant_queries, 5);
  EXPECT_EQ(defaults.probe.engine.mode, engine::EngineOptions::Mode::kEvent);
  EXPECT_GE(defaults.probe.engine.window, 1);
}

TEST(Campaign, UdpCampaignIsRateLimited) {
  // §3.1.1: probing over UDP trips a limit far below 1,500 qps — the
  // reason the real campaign uses TCP.
  Pipeline p(4096);
  CacheProbeOptions options;
  options.probe.transport = googledns::Transport::kUdp;
  options.max_loops = 1;
  CacheProbeCampaign campaign(p.environment(), options);
  const auto result = campaign.run().result;
  EXPECT_GT(result.rate_limited, result.probes_sent / 2);
}

TEST(Campaign, DeterministicAcrossRuns) {
  Pipeline a(4096), b(4096);
  const auto result_a = a.campaign->run().result;
  const auto result_b = b.campaign->run().result;
  EXPECT_EQ(result_a.hits.size(), result_b.hits.size());
  EXPECT_EQ(result_a.slash24_upper_bound(), result_b.slash24_upper_bound());
}

TEST(Campaign, StageMaskReusesPriorArtifacts) {
  // run(kStageCampaign, prior) re-probes on top of the prior run's scopes,
  // PoPs and calibration without recomputing them — and lands on the same
  // result as the all-in-one run.
  Pipeline p(4096);
  CampaignArtifacts staged = p.campaign->run(kStagesAll & ~kStageCampaign);
  ASSERT_EQ(staged.scopes_by_domain.size(), p.campaign->domains().size());
  ASSERT_FALSE(staged.pops.probed_pops.empty());
  staged = p.campaign->run(kStageCampaign, std::move(staged));

  Pipeline q(4096);
  const CampaignArtifacts whole = q.campaign->run();
  EXPECT_EQ(staged.result.hits.size(), whole.result.hits.size());
  EXPECT_EQ(staged.result.probes_sent, whole.result.probes_sent);
  EXPECT_EQ(staged.result.slash24_upper_bound(),
            whole.result.slash24_upper_bound());
}

}  // namespace
}  // namespace netclients::core
