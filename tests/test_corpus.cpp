// Sharded-corpus + work-stealing suite (labels: determinism, tsan): the
// cross-file corpus scan must be byte-identical to the single-file view
// scan and the materializing reference at every REPRO_THREADS and every
// member split — determinism comes from the canonical (file, chunk)
// merge order, never from steal interleaving. Also covers the
// RecordChunker edge cases the corpus partition leans on (boundary
// exactly at EOF, empty members, split invariance) and the steal_map
// scheduler itself (index-ordered results, exception propagation,
// telemetry).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/chromium/chromium.h"
#include "core/exec/exec.h"
#include "core/exec/steal.h"
#include "net/crc32.h"
#include "roots/corpus.h"
#include "roots/root_server.h"
#include "roots/trace.h"
#include "roots/trace_view.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

constexpr double kSampleRate = 1.0 / 4;

// One sampled DITL capture shared by every case in this (batch) binary:
// the world build dominates, so generate once.
struct CorpusFixture {
  std::vector<roots::TraceRecord> records;
  ChromiumResult reference;

  CorpusFixture() {
    sim::WorldConfig config;
    config.scale = 1.0 / 8192;
    const sim::World world = sim::World::generate(config);
    const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
    sim::DitlOptions ditl;
    ditl.sample_rate = kSampleRate;
    sim::generate_ditl(world, roots, ditl,
                       [&](const roots::TraceRecord& rec) {
                         records.push_back(rec);
                       });
    ChromiumOptions options;
    options.sample_rate = kSampleRate;
    reference = ChromiumCounter(options).process(records);
  }
};

const CorpusFixture& fixture() {
  static CorpusFixture* f = new CorpusFixture;
  return *f;
}

ChromiumOptions scan_options(int threads, std::size_t chunk_records = 0) {
  ChromiumOptions options;
  options.sample_rate = kSampleRate;
  options.threads = threads;
  if (chunk_records > 0) options.chunk_records = chunk_records;
  return options;
}

void expect_identical(const ChromiumResult& got, const ChromiumResult& want,
                      const char* what) {
  EXPECT_EQ(got.records_scanned, want.records_scanned) << what;
  EXPECT_EQ(got.signature_matches, want.signature_matches) << what;
  EXPECT_EQ(got.rejected_collisions, want.rejected_collisions) << what;
  ASSERT_EQ(got.probes_by_resolver.size(), want.probes_by_resolver.size())
      << what;
  for (const auto& [addr, count] : want.probes_by_resolver) {
    const auto it = got.probes_by_resolver.find(addr);
    ASSERT_NE(it, got.probes_by_resolver.end()) << what;
    EXPECT_EQ(it->second, count) << what;
  }
}

// ---------------------------------------------------------- steal_map

TEST(StealMap, ResultsInIndexOrderAtEveryThreadCount) {
  for (const int threads : {1, 2, 4, 8}) {
    const auto results = exec::steal_map(
        std::size_t{1000}, threads,
        [](std::size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 1000u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i);
    }
  }
}

TEST(StealMap, EmptyInput) {
  exec::StealTelemetry telemetry;
  const auto results = exec::steal_map(
      std::size_t{0}, 4, [](std::size_t i) { return i; }, &telemetry);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(telemetry.tasks, 0u);
  EXPECT_EQ(telemetry.stolen_tasks, 0u);
}

TEST(StealMap, EveryTaskRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  exec::steal_map(hits.size(), 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return 0;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(StealMap, TelemetryCountsTasksAndWorkers) {
  exec::StealTelemetry telemetry;
  exec::steal_map(std::size_t{64}, 2,
                  [](std::size_t i) { return i; }, &telemetry);
  EXPECT_EQ(telemetry.tasks, 64u);
  EXPECT_EQ(telemetry.workers, 2u);
  // Steal counts are scheduling noise — only their consistency is
  // asserted: stolen tasks cannot exceed tasks, nor steals attempts.
  EXPECT_LE(telemetry.stolen_tasks, telemetry.tasks);
  EXPECT_LE(telemetry.steals, telemetry.attempts + telemetry.steals);
}

TEST(StealMap, SerialWhenSingleThread) {
  exec::StealTelemetry telemetry;
  exec::steal_map(std::size_t{32}, 1,
                  [](std::size_t i) { return i; }, &telemetry);
  EXPECT_EQ(telemetry.workers, 1u);
  EXPECT_EQ(telemetry.steals, 0u);
  EXPECT_EQ(telemetry.stolen_tasks, 0u);
}

TEST(StealMap, ExceptionPropagates) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        exec::steal_map(std::size_t{100}, threads,
                        [](std::size_t i) -> int {
                          if (i == 57) throw std::runtime_error("boom");
                          return 0;
                        }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

// ------------------------------------------------------ RecordChunker

TEST(RecordChunker, BoundaryExactlyAtEof) {
  // 12 records of 10 bytes, 4 per chunk: the last chunk's record count is
  // full and its end offset is exactly the payload end.
  exec::RecordChunker chunker(4);
  for (int i = 0; i < 12; ++i) chunker.note(i * 10);
  const auto chunks = chunker.finish(120);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks.back().records, 4u);
  EXPECT_EQ(chunks.back().end, 120u);
  EXPECT_EQ(chunks.back().first_record, 8u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].end, chunks[i + 1].begin);
  }
}

TEST(RecordChunker, EmptyStreamYieldsNoChunks) {
  exec::RecordChunker chunker(4);
  EXPECT_TRUE(chunker.finish(0).empty());
  EXPECT_EQ(chunker.records(), 0u);
}

TEST(RecordChunker, ShortFinalChunk) {
  exec::RecordChunker chunker(5);
  for (int i = 0; i < 7; ++i) chunker.note(i * 3);
  const auto chunks = chunker.finish(21);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].records, 5u);
  EXPECT_EQ(chunks[1].records, 2u);
  EXPECT_EQ(chunks[1].end, 21u);
}

// ------------------------------------------------------------ manifest

TEST(CorpusManifest, EncodeDecodeRoundTrip) {
  roots::CorpusManifest manifest;
  manifest.members.push_back(
      {"a.000.ncd1", roots::CorpusFormat::kNcd1, 100, 2048, 0xDEADBEEF});
  manifest.members.push_back(
      {"a.001.ncp1", roots::CorpusFormat::kNcp1, 0, 12, 0x00000001});
  const auto decoded = roots::CorpusManifest::decode(manifest.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->members, manifest.members);
  EXPECT_EQ(decoded->total_records(), 100u);
  EXPECT_EQ(decoded->total_bytes(), 2060u);
}

TEST(CorpusManifest, RejectsDamage) {
  EXPECT_FALSE(roots::CorpusManifest::decode("").has_value());
  EXPECT_FALSE(roots::CorpusManifest::decode("NCCORPUS v2\n").has_value());
  EXPECT_FALSE(roots::CorpusManifest::decode(
                   "NCCORPUS v1\nfile.ncd1\tncd1\t10\n")
                   .has_value());  // missing fields
  EXPECT_FALSE(roots::CorpusManifest::decode(
                   "NCCORPUS v1\nfile.ncd1\tweird\t10\t20\t00000000\n")
                   .has_value());  // bad format token
  EXPECT_FALSE(roots::CorpusManifest::decode(
                   "NCCORPUS v1\nfile.ncd1\tncd1\tten\t20\t00000000\n")
                   .has_value());  // non-numeric
}

// ---------------------------------------------------------- the corpus

TEST(Corpus, WriteCorpusSplitsNearEqually) {
  const auto& f = fixture();
  const std::string manifest_path = "corpus_split.manifest";
  ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, 4));
  const auto manifest = roots::CorpusManifest::read(manifest_path);
  ASSERT_TRUE(manifest.has_value());
  ASSERT_EQ(manifest->members.size(), 4u);
  EXPECT_EQ(manifest->total_records(), f.records.size());
  const std::uint64_t per = f.records.size() / 4;
  for (const auto& member : manifest->members) {
    EXPECT_NEAR(static_cast<double>(member.records),
                static_cast<double>(per), 1.0);
  }
}

TEST(Corpus, ParityAcrossThreadsAndSplits) {
  const auto& f = fixture();
  // Different member splits of the same records must all scan to the
  // reference, at every thread count — the partition invariance the
  // work-stealing merge order guarantees.
  for (const std::size_t files : {std::size_t{1}, std::size_t{3},
                                  std::size_t{4}}) {
    const std::string manifest_path =
        "corpus_parity_" + std::to_string(files) + ".manifest";
    ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, files));
    const auto corpus = roots::CorpusView::open(manifest_path);
    ASSERT_TRUE(corpus.has_value());
    ASSERT_EQ(corpus->stats().members_skipped, 0u);
    for (const int threads : {1, 2, 8}) {
      const auto result =
          ChromiumCounter(scan_options(threads)).process_corpus(*corpus);
      expect_identical(result, f.reference,
                       ("files=" + std::to_string(files) +
                        " threads=" + std::to_string(threads))
                           .c_str());
    }
  }
}

TEST(Corpus, ParityWithSmallChunksForcesManyTasks) {
  const auto& f = fixture();
  const std::string manifest_path = "corpus_chunks.manifest";
  ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, 3));
  const auto corpus = roots::CorpusView::open(manifest_path);
  ASSERT_TRUE(corpus.has_value());
  exec::StealTelemetry telemetry;
  const auto result =
      ChromiumCounter(scan_options(4, 64))
          .process_corpus(*corpus, &telemetry);
  expect_identical(result, f.reference, "chunk_records=64");
  // Tiny chunks: the task count must reflect the partition, not the
  // worker count (both passes run the same task set).
  EXPECT_GE(telemetry.tasks, 2 * f.records.size() / 64);
}

TEST(Corpus, EmptyMemberInMultiFileSet) {
  const auto& f = fixture();
  // Hand-build a corpus whose middle member is a valid, zero-record NCD1
  // file: the partition must yield no chunks for it and the scan must
  // still be byte-identical to the reference.
  const std::size_t half = f.records.size() / 2;
  const std::vector<roots::TraceRecord> first(f.records.begin(),
                                              f.records.begin() + half);
  const std::vector<roots::TraceRecord> second(f.records.begin() + half,
                                               f.records.end());
  ASSERT_TRUE(roots::TraceFile::write("corpus_empty.000.ncd1", first));
  ASSERT_TRUE(roots::TraceFile::write("corpus_empty.001.ncd1", {}));
  ASSERT_TRUE(roots::TraceFile::write("corpus_empty.002.ncd1", second));

  roots::CorpusManifest manifest;
  for (const char* name : {"corpus_empty.000.ncd1", "corpus_empty.001.ncd1",
                           "corpus_empty.002.ncd1"}) {
    std::ifstream in(name, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    roots::CorpusMember member;
    member.file = name;
    member.records = name == std::string("corpus_empty.001.ncd1")
                         ? 0
                         : (name == std::string("corpus_empty.000.ncd1")
                                ? first.size()
                                : second.size());
    member.bytes = bytes.size();
    member.crc = net::crc32(bytes);
    manifest.members.push_back(std::move(member));
  }
  ASSERT_TRUE(manifest.write("corpus_empty.manifest"));

  const auto corpus = roots::CorpusView::open("corpus_empty.manifest");
  ASSERT_TRUE(corpus.has_value());
  EXPECT_EQ(corpus->stats().members_opened, 3u);
  for (const int threads : {1, 4}) {
    const auto result =
        ChromiumCounter(scan_options(threads)).process_corpus(*corpus);
    expect_identical(result, f.reference, "empty middle member");
  }
}

TEST(Corpus, MissingMemberIsSkippedAndCounted) {
  const auto& f = fixture();
  const std::string manifest_path = "corpus_missing.manifest";
  ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, 3));
  auto manifest = roots::CorpusManifest::read(manifest_path);
  ASSERT_TRUE(manifest.has_value());
  std::remove(manifest->members[1].file.c_str());

  const auto corpus = roots::CorpusView::open(manifest_path);
  ASSERT_TRUE(corpus.has_value());
  EXPECT_EQ(corpus->stats().members_opened, 2u);
  EXPECT_EQ(corpus->stats().members_skipped, 1u);
  EXPECT_EQ(corpus->stats().records_skipped, manifest->members[1].records);

  const auto result =
      ChromiumCounter(scan_options(2)).process_corpus(*corpus);
  // The skipped member's declared records land in records_skipped; the
  // readable members still scan normally.
  EXPECT_EQ(result.records_skipped, manifest->members[1].records);
  EXPECT_EQ(result.records_scanned,
            f.records.size() - manifest->members[1].records);
}

TEST(Corpus, CrcVerificationCatchesCorruption) {
  const auto& f = fixture();
  const std::string manifest_path = "corpus_crc.manifest";
  ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, 2));
  const auto manifest = roots::CorpusManifest::read(manifest_path);
  ASSERT_TRUE(manifest.has_value());
  {
    // Flip one payload byte mid-file.
    std::fstream file(manifest->members[0].file,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(static_cast<std::streamoff>(manifest->members[0].bytes / 2));
    const char byte = static_cast<char>(0xA5);
    file.write(&byte, 1);
  }
  // Tolerant open (no CRC check) still opens both members.
  const auto lax = roots::CorpusView::open(manifest_path);
  ASSERT_TRUE(lax.has_value());
  EXPECT_EQ(lax->stats().members_opened, 2u);
  // Strict open skips the damaged member and counts the mismatch.
  roots::CorpusView::OpenOptions strict;
  strict.verify_crc = true;
  const auto checked = roots::CorpusView::open(manifest_path, strict);
  ASSERT_TRUE(checked.has_value());
  EXPECT_EQ(checked->stats().crc_mismatches, 1u);
  EXPECT_EQ(checked->stats().members_skipped, 1u);
  EXPECT_EQ(checked->stats().members_opened, 1u);
}

TEST(Corpus, MixedFormatMembersScanIdentically) {
  const auto& f = fixture();
  // One NCD1 member plus one NCP1 member over the same split: the corpus
  // scan dispatches per member format and must still match the reference.
  const std::size_t half = f.records.size() / 2;
  const std::vector<roots::TraceRecord> first(f.records.begin(),
                                              f.records.begin() + half);
  const std::vector<roots::TraceRecord> second(f.records.begin() + half,
                                               f.records.end());
  roots::CorpusWriter::Options ncd1;
  roots::CorpusWriter writer_a("corpus_mixed_a.manifest", ncd1);
  for (const auto& rec : first) writer_a.add(rec);
  ASSERT_TRUE(writer_a.finish());
  roots::CorpusWriter::Options ncp1;
  ncp1.format = roots::CorpusFormat::kNcp1;
  roots::CorpusWriter writer_b("corpus_mixed_b.manifest", ncp1);
  for (const auto& rec : second) writer_b.add(rec);
  ASSERT_TRUE(writer_b.finish());

  roots::CorpusManifest merged;
  for (const char* path :
       {"corpus_mixed_a.manifest", "corpus_mixed_b.manifest"}) {
    const auto part = roots::CorpusManifest::read(path);
    ASSERT_TRUE(part.has_value());
    for (const auto& member : part->members) {
      merged.members.push_back(member);
    }
  }
  ASSERT_TRUE(merged.write("corpus_mixed.manifest"));

  const auto corpus = roots::CorpusView::open("corpus_mixed.manifest");
  ASSERT_TRUE(corpus.has_value());
  ASSERT_EQ(corpus->stats().members_opened, 2u);
  for (const int threads : {1, 4}) {
    const auto result =
        ChromiumCounter(scan_options(threads)).process_corpus(*corpus);
    expect_identical(result, f.reference, "mixed ncd1+ncp1");
  }
}

TEST(Corpus, ProcessCorpusFileMatchesOpenThenProcess) {
  const auto& f = fixture();
  const std::string manifest_path = "corpus_file.manifest";
  ASSERT_TRUE(roots::write_corpus(manifest_path, f.records, 2));
  const auto via_file = ChromiumCounter(scan_options(2))
                            .process_corpus_file(manifest_path);
  ASSERT_TRUE(via_file.has_value());
  expect_identical(*via_file, f.reference, "process_corpus_file");
  EXPECT_FALSE(ChromiumCounter(scan_options(2))
                   .process_corpus_file("no_such.manifest")
                   .has_value());
}

}  // namespace
}  // namespace netclients::core
