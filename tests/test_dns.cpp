// Tests for the DNS substrate: names, ECS, message building, and the RFC
// 1035 wire codec (encode/decode round trips, compression, malformed
// input rejection).

#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/packet.h"
#include "dns/wire.h"
#include "net/rng.h"

namespace netclients::dns {
namespace {

// ----------------------------------------------------------------- DnsName

TEST(DnsName, ParsesAndCanonicalizesCase) {
  auto name = DnsName::parse("WWW.Google.COM");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->to_string(), "www.google.com");
  EXPECT_EQ(name->label_count(), 3u);
}

TEST(DnsName, TrailingDotOptional) {
  EXPECT_EQ(*DnsName::parse("example.com."), *DnsName::parse("example.com"));
}

TEST(DnsName, RootName) {
  auto root = DnsName::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(DnsName, SingleLabelDetection) {
  EXPECT_TRUE(DnsName::parse("sdhfjssf")->is_single_label());
  EXPECT_FALSE(DnsName::parse("a.b")->is_single_label());
}

TEST(DnsName, WireLength) {
  // 3www6google3com0 = 1+3 + 1+6 + 1+3 + 1 = 16
  EXPECT_EQ(DnsName::parse("www.google.com")->wire_length(), 16u);
}

TEST(DnsName, EqualNamesHashEqual) {
  const auto a = *DnsName::parse("Example.COM");
  const auto b = *DnsName::parse("example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

class DnsNameRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(DnsNameRejects, Rejects) {
  EXPECT_FALSE(DnsName::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DnsNameRejects,
    ::testing::Values("a..b", ".leading", "bad label",
                      "<script>", "a!b.com",
                      // 64-char label (limit is 63)
                      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                      "aaaaaaaaaaaa.com"));

TEST(DnsName, RejectsNamesOver255Octets) {
  // 5 labels of 63 'a' = 5*64+1 = 321 > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    if (i) big.push_back('.');
    big.append(63, 'a');
  }
  EXPECT_FALSE(DnsName::parse(big).has_value());
}

// --------------------------------------------------------------------- ECS

TEST(Ecs, ForQuerySetsScopeZero) {
  const auto ecs = EcsOption::for_query(*net::Prefix::parse("1.2.3.0/24"));
  EXPECT_EQ(ecs.source_prefix_length, 24);
  EXPECT_EQ(ecs.scope_prefix_length, 0);
  EXPECT_EQ(ecs.source_prefix().to_string(), "1.2.3.0/24");
}

// --------------------------------------------------------------- wire codec

DnsMessage sample_query() {
  return make_query(0x1234, *DnsName::parse("www.google.com"),
                    RecordType::kA, false,
                    EcsOption::for_query(*net::Prefix::parse(
                        "203.0.113.0/24")));
}

TEST(Wire, QueryRoundTrip) {
  const DnsMessage query = sample_query();
  const auto wire = encode(query);
  const DecodeResult decoded = decode(wire);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, query);
}

TEST(Wire, HeaderFlagsRoundTrip) {
  DnsMessage msg = sample_query();
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.ra = true;
  msg.header.rd = true;
  msg.header.rcode = RCode::kNxDomain;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.message.header, msg.header);
}

TEST(Wire, ResponseWithAnswersRoundTrip) {
  DnsMessage response = make_response(sample_query(), RCode::kNoError);
  response.answers.push_back(ResourceRecord{
      *DnsName::parse("www.google.com"), RecordType::kA, kClassIn, 300,
      AData{*net::Ipv4Addr::parse("142.250.1.1")}});
  response.edns->ecs->scope_prefix_length = 20;
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, response);
  EXPECT_EQ(decoded.message.edns->ecs->scope_prefix_length, 20);
}

TEST(Wire, TxtRecordRoundTrip) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  msg.answers.push_back(ResourceRecord{*DnsName::parse("o-o.myaddr"),
                                       RecordType::kTxt, kClassIn, 60,
                                       TxtData{"Groningen"}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, msg);
}

TEST(Wire, LongTxtSplitsIntoCharacterStrings) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  std::string long_text(700, 'x');
  msg.answers.push_back(ResourceRecord{*DnsName::parse("t.example"),
                                       RecordType::kTxt, kClassIn, 60,
                                       TxtData{long_text}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(std::get<TxtData>(decoded.message.answers[0].rdata).text,
            long_text);
}

TEST(Wire, CompressionShrinksRepeatedNames) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  for (int i = 0; i < 4; ++i) {
    msg.answers.push_back(ResourceRecord{
        *DnsName::parse("www.google.com"), RecordType::kA, kClassIn, 300,
        AData{net::Ipv4Addr(0x01020304u + static_cast<std::uint32_t>(i))}});
  }
  const auto wire = encode(msg);
  // Without compression each answer owner name costs 16 bytes; compressed
  // repeats cost 2. Verify the aggregate is clearly compressed.
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.message, msg);
  const std::size_t uncompressed_estimate =
      12 + (16 + 4) + 4 * (16 + 10 + 4) + 23;
  EXPECT_LT(wire.size(), uncompressed_estimate - 3 * 10);
}

TEST(Wire, EcsScopeLongerSourceRoundTrip) {
  // A /12 source needs only 2 address bytes on the wire.
  auto query = make_query(7, *DnsName::parse("a.example"), RecordType::kA,
                          true,
                          EcsOption::for_query(*net::Prefix::parse(
                              "10.16.0.0/12")));
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message.edns->ecs->source_prefix().to_string(),
            "10.16.0.0/12");
}

TEST(Wire, DecodeRejectsTruncationAtEveryLength) {
  const auto wire = encode(sample_query());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult decoded =
        decode(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_FALSE(decoded.ok) << "accepted truncation at " << len;
  }
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  auto wire = encode(sample_query());
  wire.push_back(0xAB);
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsCompressionLoop) {
  // Header with one question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00,
      0xC0, 0x0C,  // pointer to offset 12 (itself)
      0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00,
      0xC0, 0x20,  // pointer beyond current position
      0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsBadEcs) {
  auto query = sample_query();
  auto wire = encode(query);
  // Corrupt the ECS family (last option bytes): find option code 8 and
  // set family to 2 (IPv6) which we reject.
  for (std::size_t i = 0; i + 8 < wire.size(); ++i) {
    if (wire[i] == 0 && wire[i + 1] == 8 && wire[i + 4] == 0 &&
        wire[i + 5] == 1) {
      wire[i + 5] = 2;
      break;
    }
  }
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, UnknownRecordTypePreservedAsRaw) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  msg.answers.push_back(ResourceRecord{*DnsName::parse("x.example"),
                                       static_cast<RecordType>(99), kClassIn,
                                       5, RawData{{1, 2, 3, 4, 5}}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, msg);
}

// Property: arbitrary generated messages round-trip bit-exactly.
class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, GeneratedMessagesRoundTrip) {
  net::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    DnsMessage msg;
    msg.header.id = static_cast<std::uint16_t>(rng());
    msg.header.qr = rng.bernoulli(0.5);
    msg.header.rd = rng.bernoulli(0.5);
    msg.header.rcode = static_cast<RCode>(rng.below(6));
    const char* names[] = {"www.google.com", "a.b.c.d.example",
                           "singlelabel", "x.y"};
    msg.questions.push_back(Question{
        *DnsName::parse(names[rng.below(4)]),
        rng.bernoulli(0.5) ? RecordType::kA : RecordType::kTxt, kClassIn});
    const auto answers = rng.below(4);
    for (std::uint64_t i = 0; i < answers; ++i) {
      ResourceRecord rr;
      rr.name = *DnsName::parse(names[rng.below(4)]);
      rr.ttl = static_cast<std::uint32_t>(rng.below(86400));
      if (rng.bernoulli(0.5)) {
        rr.type = RecordType::kA;
        rr.rdata = AData{net::Ipv4Addr(static_cast<std::uint32_t>(rng()))};
      } else {
        rr.type = RecordType::kTxt;
        rr.rdata = TxtData{std::string(rng.below(80), 't')};
      }
      msg.answers.push_back(std::move(rr));
    }
    if (rng.bernoulli(0.7)) {
      msg.edns = EdnsInfo{};
      if (rng.bernoulli(0.8)) {
        msg.edns->ecs = EcsOption::for_query(
            net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                        static_cast<std::uint8_t>(rng.below(25))));
        msg.edns->ecs->scope_prefix_length =
            static_cast<std::uint8_t>(rng.below(25));
      }
    }
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok) << decoded.error;
    EXPECT_EQ(decoded.message, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// ------------------------------------------------------------ packet plane

/// A response exercising every encoder feature at once: compression
/// (shared owner names), A + TXT + raw RDATA, authority/additional
/// sections, and an ECS-carrying OPT.
DnsMessage busy_response() {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  msg.header.aa = true;
  msg.edns->ecs->scope_prefix_length = 20;
  const auto owner = *DnsName::parse("www.google.com");
  msg.answers.push_back(ResourceRecord{
      owner, RecordType::kA, kClassIn, 300, AData{net::Ipv4Addr(0x08080808)}});
  msg.answers.push_back(ResourceRecord{
      owner, RecordType::kA, kClassIn, 300, AData{net::Ipv4Addr(0x08080404)}});
  msg.answers.push_back(ResourceRecord{
      *DnsName::parse("alias.google.com"), RecordType::kTxt, kClassIn, 60,
      TxtData{"pop=grq"}});
  msg.authorities.push_back(ResourceRecord{
      *DnsName::parse("google.com"), static_cast<RecordType>(2), kClassIn,
      86400, RawData{{3, 'n', 's', '1', 0xC0, 0x11}}});
  msg.additionals.push_back(ResourceRecord{
      *DnsName::parse("ns1.google.com"), RecordType::kA, kClassIn, 86400,
      AData{net::Ipv4Addr(0x01020304)}});
  return msg;
}

TEST(Packet, ArenaEncodeMatchesAllocEncode) {
  WireArena arena;
  // Sequential encodes into one recycled arena must each match the
  // allocating encoder — recycling cannot leak state across messages.
  for (const DnsMessage& msg :
       {sample_query(), busy_response(),
        make_query(7, *DnsName::parse("."), RecordType::kA, true)}) {
    const auto alloc = encode(msg);
    const auto span = encode_into(msg, arena);
    EXPECT_EQ(alloc, std::vector<std::uint8_t>(span.begin(), span.end()));
  }
}

TEST(Packet, ViewParityWithMaterializingDecode) {
  for (const DnsMessage& msg :
       {sample_query(), busy_response(),
        make_query(1, *DnsName::parse("qpwoeiruty"), RecordType::kA, true)}) {
    const auto wire = encode(msg);
    std::string error;
    const auto view = MessageView::parse(wire, &error);
    ASSERT_TRUE(view.has_value()) << error;
    const DecodeResult decoded = decode(wire);
    ASSERT_TRUE(decoded.ok);
    EXPECT_EQ(view->materialize(), decoded.message);
    EXPECT_EQ(view->header(), msg.header);
  }
}

TEST(Packet, ViewAccessorsExposeSectionsWithoutMaterializing) {
  const DnsMessage msg = busy_response();
  const auto wire = encode(msg);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->question_count(), 1u);
  EXPECT_TRUE(view->first_question().name.equals(msg.questions[0].name));
  EXPECT_EQ(view->record_count(MessageView::Section::kAnswer), 3u);
  EXPECT_EQ(view->record_count(MessageView::Section::kAuthority), 1u);
  // The OPT pseudo-record is lifted into edns(), not listed as a record.
  EXPECT_EQ(view->record_count(MessageView::Section::kAdditional), 1u);
  ASSERT_TRUE(view->edns().has_value());
  EXPECT_EQ(view->edns(), msg.edns);

  std::vector<net::Ipv4Addr> addrs;
  std::string txt;
  view->for_each_record(MessageView::Section::kAnswer,
                        [&](const MessageView::RecordView& rr) {
                          if (const auto a = rr.a_address()) {
                            addrs.push_back(*a);
                          } else if (rr.type == RecordType::kTxt) {
                            ASSERT_TRUE(rr.txt_text(&txt));
                          }
                        });
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0].value(), 0x08080808u);
  EXPECT_EQ(addrs[1].value(), 0x08080404u);
  EXPECT_EQ(txt, "pop=grq");
}

TEST(Packet, TruncationSweepEveryOffsetAgrees) {
  // Both decoders must agree — accept/reject and diagnostic — on every
  // prefix of a feature-dense packet, and neither may crash or hang.
  const auto wire = encode(busy_response());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    std::string view_error;
    const auto view = MessageView::parse(prefix, &view_error);
    const DecodeResult decoded = decode(prefix);
    ASSERT_EQ(decoded.ok, view.has_value()) << "cut at " << cut;
    if (!decoded.ok) {
      EXPECT_EQ(decoded.error, view_error) << "cut at " << cut;
    } else {
      EXPECT_EQ(view->materialize(), decoded.message) << "cut at " << cut;
    }
  }
}

TEST(Packet, EncodeDecodeEncodeByteStable) {
  net::Rng rng(0x1035);
  for (int iter = 0; iter < 100; ++iter) {
    DnsMessage msg = rng.bernoulli(0.5) ? busy_response() : sample_query();
    msg.header.id = static_cast<std::uint16_t>(rng());
    const auto first = encode(msg);
    const DecodeResult decoded = decode(first);
    ASSERT_TRUE(decoded.ok) << decoded.error;
    EXPECT_EQ(encode(decoded.message), first);
  }
}

TEST(Packet, NameViewHashEqualsCaseInsensitive) {
  // Hand-built query whose qname bytes are uppercase: the wire form a
  // real client may send, which DnsName canonicalizes on materialize.
  // NameView must hash/compare the canonical form without materializing.
  std::vector<std::uint8_t> wire = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  for (const char* label : {"WWW", "Example", "COM"}) {
    wire.push_back(static_cast<std::uint8_t>(std::strlen(label)));
    for (const char* c = label; *c; ++c) {
      wire.push_back(static_cast<std::uint8_t>(*c));
    }
  }
  wire.push_back(0x00);  // root
  wire.push_back(0x00);
  wire.push_back(0x01);  // qtype A
  wire.push_back(0x00);
  wire.push_back(0x01);  // qclass IN
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.has_value());
  const NameView& name = view->first_question().name;
  const DnsName canonical = *DnsName::parse("www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.canonical_hash(), canonical.hash());
  EXPECT_TRUE(name.equals(canonical));
  EXPECT_FALSE(name.equals(*DnsName::parse("www.example.org")));
  EXPECT_EQ(name.materialize(), canonical);
}

TEST(Packet, ForwardPointerAndLoopRejectedByBothDecoders) {
  // Compression pointers must point strictly backward; craft a name whose
  // pointer targets itself (forward/self reference).
  std::vector<std::uint8_t> wire = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.push_back(0xC0);
  wire.push_back(12);  // points at its own first byte
  wire.push_back(0x00);
  wire.push_back(0x01);
  wire.push_back(0x00);
  wire.push_back(0x01);
  std::string view_error;
  EXPECT_FALSE(MessageView::parse(wire, &view_error).has_value());
  const DecodeResult decoded = decode(wire);
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, view_error);
  EXPECT_NE(view_error.find("pointer"), std::string::npos) << view_error;
}

TEST(Message, MakeResponseEchoesQuestionAndEcs) {
  const auto query = sample_query();
  const auto response = make_response(query, RCode::kNoError);
  EXPECT_TRUE(response.header.qr);
  EXPECT_EQ(response.header.id, query.header.id);
  EXPECT_EQ(response.questions, query.questions);
  ASSERT_TRUE(response.edns.has_value());
  EXPECT_EQ(response.edns->ecs, query.edns->ecs);
}

}  // namespace
}  // namespace netclients::dns
