// Tests for the DNS substrate: names, ECS, message building, and the RFC
// 1035 wire codec (encode/decode round trips, compression, malformed
// input rejection).

#include <gtest/gtest.h>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/wire.h"
#include "net/rng.h"

namespace netclients::dns {
namespace {

// ----------------------------------------------------------------- DnsName

TEST(DnsName, ParsesAndCanonicalizesCase) {
  auto name = DnsName::parse("WWW.Google.COM");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->to_string(), "www.google.com");
  EXPECT_EQ(name->label_count(), 3u);
}

TEST(DnsName, TrailingDotOptional) {
  EXPECT_EQ(*DnsName::parse("example.com."), *DnsName::parse("example.com"));
}

TEST(DnsName, RootName) {
  auto root = DnsName::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(DnsName, SingleLabelDetection) {
  EXPECT_TRUE(DnsName::parse("sdhfjssf")->is_single_label());
  EXPECT_FALSE(DnsName::parse("a.b")->is_single_label());
}

TEST(DnsName, WireLength) {
  // 3www6google3com0 = 1+3 + 1+6 + 1+3 + 1 = 16
  EXPECT_EQ(DnsName::parse("www.google.com")->wire_length(), 16u);
}

TEST(DnsName, EqualNamesHashEqual) {
  const auto a = *DnsName::parse("Example.COM");
  const auto b = *DnsName::parse("example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

class DnsNameRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(DnsNameRejects, Rejects) {
  EXPECT_FALSE(DnsName::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DnsNameRejects,
    ::testing::Values("a..b", ".leading", "bad label",
                      "<script>", "a!b.com",
                      // 64-char label (limit is 63)
                      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                      "aaaaaaaaaaaa.com"));

TEST(DnsName, RejectsNamesOver255Octets) {
  // 5 labels of 63 'a' = 5*64+1 = 321 > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    if (i) big.push_back('.');
    big.append(63, 'a');
  }
  EXPECT_FALSE(DnsName::parse(big).has_value());
}

// --------------------------------------------------------------------- ECS

TEST(Ecs, ForQuerySetsScopeZero) {
  const auto ecs = EcsOption::for_query(*net::Prefix::parse("1.2.3.0/24"));
  EXPECT_EQ(ecs.source_prefix_length, 24);
  EXPECT_EQ(ecs.scope_prefix_length, 0);
  EXPECT_EQ(ecs.source_prefix().to_string(), "1.2.3.0/24");
}

// --------------------------------------------------------------- wire codec

DnsMessage sample_query() {
  return make_query(0x1234, *DnsName::parse("www.google.com"),
                    RecordType::kA, false,
                    EcsOption::for_query(*net::Prefix::parse(
                        "203.0.113.0/24")));
}

TEST(Wire, QueryRoundTrip) {
  const DnsMessage query = sample_query();
  const auto wire = encode(query);
  const DecodeResult decoded = decode(wire);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, query);
}

TEST(Wire, HeaderFlagsRoundTrip) {
  DnsMessage msg = sample_query();
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.ra = true;
  msg.header.rd = true;
  msg.header.rcode = RCode::kNxDomain;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.message.header, msg.header);
}

TEST(Wire, ResponseWithAnswersRoundTrip) {
  DnsMessage response = make_response(sample_query(), RCode::kNoError);
  response.answers.push_back(ResourceRecord{
      *DnsName::parse("www.google.com"), RecordType::kA, kClassIn, 300,
      AData{*net::Ipv4Addr::parse("142.250.1.1")}});
  response.edns->ecs->scope_prefix_length = 20;
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, response);
  EXPECT_EQ(decoded.message.edns->ecs->scope_prefix_length, 20);
}

TEST(Wire, TxtRecordRoundTrip) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  msg.answers.push_back(ResourceRecord{*DnsName::parse("o-o.myaddr"),
                                       RecordType::kTxt, kClassIn, 60,
                                       TxtData{"Groningen"}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, msg);
}

TEST(Wire, LongTxtSplitsIntoCharacterStrings) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  std::string long_text(700, 'x');
  msg.answers.push_back(ResourceRecord{*DnsName::parse("t.example"),
                                       RecordType::kTxt, kClassIn, 60,
                                       TxtData{long_text}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(std::get<TxtData>(decoded.message.answers[0].rdata).text,
            long_text);
}

TEST(Wire, CompressionShrinksRepeatedNames) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  for (int i = 0; i < 4; ++i) {
    msg.answers.push_back(ResourceRecord{
        *DnsName::parse("www.google.com"), RecordType::kA, kClassIn, 300,
        AData{net::Ipv4Addr(0x01020304u + static_cast<std::uint32_t>(i))}});
  }
  const auto wire = encode(msg);
  // Without compression each answer owner name costs 16 bytes; compressed
  // repeats cost 2. Verify the aggregate is clearly compressed.
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.message, msg);
  const std::size_t uncompressed_estimate =
      12 + (16 + 4) + 4 * (16 + 10 + 4) + 23;
  EXPECT_LT(wire.size(), uncompressed_estimate - 3 * 10);
}

TEST(Wire, EcsScopeLongerSourceRoundTrip) {
  // A /12 source needs only 2 address bytes on the wire.
  auto query = make_query(7, *DnsName::parse("a.example"), RecordType::kA,
                          true,
                          EcsOption::for_query(*net::Prefix::parse(
                              "10.16.0.0/12")));
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message.edns->ecs->source_prefix().to_string(),
            "10.16.0.0/12");
}

TEST(Wire, DecodeRejectsTruncationAtEveryLength) {
  const auto wire = encode(sample_query());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult decoded =
        decode(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_FALSE(decoded.ok) << "accepted truncation at " << len;
  }
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  auto wire = encode(sample_query());
  wire.push_back(0xAB);
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsCompressionLoop) {
  // Header with one question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00,
      0xC0, 0x0C,  // pointer to offset 12 (itself)
      0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00,
      0xC0, 0x20,  // pointer beyond current position
      0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, DecodeRejectsBadEcs) {
  auto query = sample_query();
  auto wire = encode(query);
  // Corrupt the ECS family (last option bytes): find option code 8 and
  // set family to 2 (IPv6) which we reject.
  for (std::size_t i = 0; i + 8 < wire.size(); ++i) {
    if (wire[i] == 0 && wire[i + 1] == 8 && wire[i + 4] == 0 &&
        wire[i + 5] == 1) {
      wire[i + 5] = 2;
      break;
    }
  }
  EXPECT_FALSE(decode(wire).ok);
}

TEST(Wire, UnknownRecordTypePreservedAsRaw) {
  DnsMessage msg = make_response(sample_query(), RCode::kNoError);
  msg.answers.push_back(ResourceRecord{*DnsName::parse("x.example"),
                                       static_cast<RecordType>(99), kClassIn,
                                       5, RawData{{1, 2, 3, 4, 5}}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.message, msg);
}

// Property: arbitrary generated messages round-trip bit-exactly.
class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, GeneratedMessagesRoundTrip) {
  net::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    DnsMessage msg;
    msg.header.id = static_cast<std::uint16_t>(rng());
    msg.header.qr = rng.bernoulli(0.5);
    msg.header.rd = rng.bernoulli(0.5);
    msg.header.rcode = static_cast<RCode>(rng.below(6));
    const char* names[] = {"www.google.com", "a.b.c.d.example",
                           "singlelabel", "x.y"};
    msg.questions.push_back(Question{
        *DnsName::parse(names[rng.below(4)]),
        rng.bernoulli(0.5) ? RecordType::kA : RecordType::kTxt, kClassIn});
    const auto answers = rng.below(4);
    for (std::uint64_t i = 0; i < answers; ++i) {
      ResourceRecord rr;
      rr.name = *DnsName::parse(names[rng.below(4)]);
      rr.ttl = static_cast<std::uint32_t>(rng.below(86400));
      if (rng.bernoulli(0.5)) {
        rr.type = RecordType::kA;
        rr.rdata = AData{net::Ipv4Addr(static_cast<std::uint32_t>(rng()))};
      } else {
        rr.type = RecordType::kTxt;
        rr.rdata = TxtData{std::string(rng.below(80), 't')};
      }
      msg.answers.push_back(std::move(rr));
    }
    if (rng.bernoulli(0.7)) {
      msg.edns = EdnsInfo{};
      if (rng.bernoulli(0.8)) {
        msg.edns->ecs = EcsOption::for_query(
            net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng())),
                        static_cast<std::uint8_t>(rng.below(25))));
        msg.edns->ecs->scope_prefix_length =
            static_cast<std::uint8_t>(rng.below(25));
      }
    }
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok) << decoded.error;
    EXPECT_EQ(decoded.message, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(Message, MakeResponseEchoesQuestionAndEcs) {
  const auto query = sample_query();
  const auto response = make_response(query, RCode::kNoError);
  EXPECT_TRUE(response.header.qr);
  EXPECT_EQ(response.header.id, query.header.id);
  EXPECT_EQ(response.questions, query.questions);
  ASSERT_TRUE(response.edns.has_value());
  EXPECT_EQ(response.edns->ecs, query.edns->ecs);
}

}  // namespace
}  // namespace netclients::dns
