// Tests for the cross-comparison analytics (overlap matrices, volume
// overlap, CDFs, country coverage, per-AS bounds) and the report
// renderers.

#include <gtest/gtest.h>

#include <fstream>

#include "core/compare/compare.h"
#include "core/report/report.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

PrefixDataset make_prefix_ds(const char* name,
                             std::initializer_list<std::pair<int, double>>
                                 entries) {
  PrefixDataset ds(name);
  for (const auto& [idx, volume] : entries) {
    ds.add(static_cast<std::uint32_t>(idx), volume);
  }
  return ds;
}

AsDataset make_as_ds(const char* name,
                     std::initializer_list<std::pair<int, double>> entries) {
  AsDataset ds(name);
  for (const auto& [asn, volume] : entries) {
    ds.add(static_cast<std::uint32_t>(asn), volume);
  }
  return ds;
}

TEST(Datasets, AddAccumulatesVolume) {
  PrefixDataset ds("x");
  ds.add(5, 2.0);
  ds.add(5, 3.0);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds.volume_of(5), 5.0);
  EXPECT_DOUBLE_EQ(ds.total_volume(), 5.0);
}

TEST(Datasets, UnionKeepsFirstVolumeForShared) {
  const auto a = make_prefix_ds("a", {{1, 10.0}, {2, 5.0}});
  const auto b = make_prefix_ds("b", {{2, 99.0}, {3, 7.0}});
  const auto u = PrefixDataset::union_of("u", a, b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_DOUBLE_EQ(u.volume_of(2), 5.0);
  EXPECT_DOUBLE_EQ(u.volume_of(3), 7.0);
}

TEST(Compare, PrefixOverlapMatrix) {
  const auto a = make_prefix_ds("a", {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto b = make_prefix_ds("b", {{3, 0}, {4, 0}, {5, 0}});
  const auto matrix = prefix_overlap({&a, &b});
  EXPECT_EQ(matrix.cells[0][0], 4u);
  EXPECT_EQ(matrix.cells[1][1], 3u);
  EXPECT_EQ(matrix.cells[0][1], 2u);
  EXPECT_EQ(matrix.cells[1][0], 2u);
  EXPECT_DOUBLE_EQ(matrix.row_pct(0, 1), 50.0);
  EXPECT_NEAR(matrix.row_pct(1, 0), 66.7, 0.1);
}

TEST(Compare, AsVolumeOverlap) {
  const auto row = make_as_ds("volumes", {{1, 80.0}, {2, 20.0}});
  const auto col_full = make_as_ds("all", {{1, 0}, {2, 0}});
  const auto col_partial = make_as_ds("partial", {{1, 0}});
  const auto result = as_volume_overlap({&row}, {&col_full, &col_partial});
  EXPECT_DOUBLE_EQ(result[0][0], 100.0);
  EXPECT_DOUBLE_EQ(result[0][1], 80.0);
}

TEST(Compare, PrefixVolumeShare) {
  const auto volumes = make_prefix_ds("v", {{1, 90.0}, {2, 10.0}});
  const auto presence = make_prefix_ds("p", {{1, 0}});
  EXPECT_DOUBLE_EQ(prefix_volume_share(volumes, presence), 90.0);
}

TEST(Compare, CdfQuantilesAndPoints) {
  Cdf cdf({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(cdf.quantile(0), 1);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3);
  EXPECT_DOUBLE_EQ(cdf.quantile(1), 5);
  const auto points = cdf.points(5);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front().first, 1);
  EXPECT_DOUBLE_EQ(points.back().first, 5);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Compare, CdfEmptyIsSafe) {
  Cdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0);
  EXPECT_TRUE(cdf.points(3).empty());
}

TEST(Compare, RelativeVolumesSumToOne) {
  const auto ds = make_as_ds("x", {{1, 10.0}, {2, 30.0}, {3, 60.0}});
  const auto shares = relative_volumes(ds);
  double total = 0;
  for (const auto& [asn, share] : shares) total += share;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(shares.at(3), 0.6);
}

TEST(Compare, VolumeDifferencesCoverUnion) {
  std::unordered_map<std::uint32_t, double> a{{1, 0.5}, {2, 0.5}};
  std::unordered_map<std::uint32_t, double> b{{2, 0.3}, {3, 0.7}};
  const auto diffs = volume_differences(a, b);
  ASSERT_EQ(diffs.size(), 3u);
  double sum = 0;
  for (double d : diffs) sum += d;
  EXPECT_NEAR(sum, 0.0, 1e-12);  // both sides sum to 1
}

TEST(Compare, CountryCoverageOnWorld) {
  sim::WorldConfig config;
  config.scale = 1.0 / 1024;
  const sim::World world = sim::World::generate(config);
  // Fake APNIC: every AS's true users; detected: all ASes -> coverage 1.
  std::unordered_map<std::uint32_t, double> apnic;
  AsDataset all("all");
  for (const sim::AsEntry& as : world.ases()) {
    if (as.users > 0) {
      apnic[as.asn] = as.users;
      all.add(as.asn);
    }
  }
  const auto rows = country_coverage(world, apnic, all);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.covered_fraction, 1.0);
    EXPECT_GT(row.apnic_users, 0);
  }
  // Sorted by users descending.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].apnic_users, rows[i].apnic_users);
  }
}

TEST(Compare, PerAsActiveFractionBounds) {
  sim::WorldConfig config;
  config.scale = 1.0 / 1024;
  const sim::World world = sim::World::generate(config);
  // Mark the first announced prefix of a mid-size AS fully active.
  const sim::AsEntry* target = nullptr;
  for (const sim::AsEntry& as : world.ases()) {
    if (as.announced.size() >= 2 &&
        as.announced[0].slash24_count() >= 4) {
      target = &as;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  net::DisjointPrefixSet active;
  active.insert(target->announced[0]);
  const auto bounds = per_as_active_fraction(world, active);
  bool found = false;
  for (const auto& row : bounds) {
    if (row.asn == target->asn) {
      found = true;
      EXPECT_EQ(row.lower, 1u);
      EXPECT_EQ(row.upper, target->announced[0].slash24_count());
      EXPECT_LE(row.upper, row.announced_slash24);
    } else {
      EXPECT_EQ(row.upper, 0u);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------------ report

TEST(Report, HumanCount) {
  EXPECT_EQ(human_count(9712200), "9.7M");
  EXPECT_EQ(human_count(692200), "692.2K");
  EXPECT_EQ(human_count(123), "123");
}

TEST(Report, Pct) {
  EXPECT_EQ(pct(68.12), "68.1%");
  EXPECT_EQ(pct(100.0, 0), "100%");
}

TEST(Report, TextTableAligns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Report, RenderOverlapHasDiagonal100) {
  const auto a = make_prefix_ds("alpha", {{1, 0}, {2, 0}});
  const auto b = make_prefix_ds("beta", {{2, 0}});
  const std::string out = render_overlap(prefix_overlap({&a, &b}));
  EXPECT_NE(out.find("(100.0%)"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Report, WriteCsv) {
  const std::string path = "report_csv_test.csv";
  ASSERT_TRUE(write_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclients::core
