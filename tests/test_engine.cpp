// Tests for the event-driven probe engine: the event mode must produce
// byte-identical campaigns to the legacy-sync adapter at any in-flight
// window and any thread count — under faults, breaker trips and UDP→TCP
// escalation included — while compressing the modeled wall clock by the
// pipelining factor.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/engine/engine.h"
#include "core/scenario/scenario.h"

namespace netclients::core {
namespace {

constexpr double kScale = 4096;

using engine::EngineOptions;

// Full structural fingerprint: headline counters, every hit in order, and
// the complete retry tally. Anything the engine could plausibly perturb.
std::string fingerprint(const CampaignResult& result) {
  std::ostringstream out;
  out << result.probes_sent << '|' << result.rate_limited << '|'
      << result.slash24_lower_bound() << '|'
      << result.slash24_upper_bound() << '\n';
  const resilience::RetryStats& rs = result.retry_stats;
  out << rs.retries << ',' << rs.timeouts << ',' << rs.servfails << ','
      << rs.exhausted << ',' << rs.escalations << ',' << rs.breaker_opened
      << ',' << rs.breaker_skipped << ',' << rs.requeued << ','
      << rs.waited_ms << '\n';
  for (const CacheHit& hit : result.hits) {
    out << hit.domain_index << ',' << hit.query_scope.base().value() << '/'
        << static_cast<int>(hit.query_scope.length()) << ','
        << static_cast<int>(hit.return_scope) << ',' << hit.pop << ','
        << hit.when << '\n';
  }
  return out.str();
}

struct RunConfig {
  googledns::FailureInjection faults;
  EngineOptions::Mode mode = EngineOptions::Mode::kEvent;
  int window = 64;
  int threads = 0;
  int retry_attempts = 3;
  googledns::Transport transport = googledns::Transport::kTcp;
  bool escalate = false;
  int breaker_threshold = 8;
};

CampaignResult run_campaign(const RunConfig& cfg) {
  googledns::GoogleDnsConfig config;
  config.faults = cfg.faults;
  CacheProbeOptions options;
  options.max_loops = 2;
  options.probe.transport = cfg.transport;
  options.probe.retry.max_attempts = cfg.retry_attempts;
  options.probe.retry.escalate_udp_to_tcp = cfg.escalate;
  options.probe.breaker.failure_threshold = cfg.breaker_threshold;
  options.probe.engine.mode = cfg.mode;
  options.probe.engine.window = cfg.window;
  const Scenario scenario = ScenarioBuilder()
                                .scale_denominator(kScale)
                                .google_config(config)
                                .probe_options(options)
                                .threads(cfg.threads)
                                .build();
  return scenario.campaign().run().result;
}

TEST(Engine, MatchesSyncFaultFree) {
  RunConfig sync;
  sync.mode = EngineOptions::Mode::kSync;
  sync.threads = 1;
  const std::string baseline = fingerprint(run_campaign(sync));
  for (int threads : {1, 2, 8}) {
    RunConfig event;
    event.mode = EngineOptions::Mode::kEvent;
    event.threads = threads;
    EXPECT_EQ(fingerprint(run_campaign(event)), baseline)
        << "event engine diverged at " << threads << " threads";
  }
}

TEST(Engine, MatchesSyncUnderFaults) {
  RunConfig sync;
  sync.faults.timeout_probability = 0.3;
  sync.faults.servfail_probability = 0.1;
  sync.mode = EngineOptions::Mode::kSync;
  sync.threads = 1;
  const CampaignResult sync_result = run_campaign(sync);
  const std::string baseline = fingerprint(sync_result);
  ASSERT_GT(sync_result.retry_stats.retries, 0u);
  for (int threads : {1, 8}) {
    for (int window : {1, 4, 64}) {
      RunConfig event = sync;
      event.mode = EngineOptions::Mode::kEvent;
      event.threads = threads;
      event.window = window;
      EXPECT_EQ(fingerprint(run_campaign(event)), baseline)
          << "diverged at threads=" << threads << " window=" << window;
    }
  }
}

TEST(Engine, WindowSweepIsByteIdenticalAndMonotone) {
  // Widening the window may only compress the virtual timeline — never
  // change results, never slow the modeled clock down.
  RunConfig cfg;
  cfg.faults.timeout_probability = 0.25;
  cfg.threads = 1;
  std::string baseline;
  double previous_duration = 0;
  for (int window : {1, 2, 8, 64}) {
    cfg.window = window;
    const CampaignResult result = run_campaign(cfg);
    ASSERT_GT(result.virtual_duration_seconds, 0.0);
    if (baseline.empty()) {
      baseline = fingerprint(result);
      previous_duration = result.virtual_duration_seconds;
      continue;
    }
    EXPECT_EQ(fingerprint(result), baseline) << "window " << window;
    EXPECT_LE(result.virtual_duration_seconds, previous_duration)
        << "window " << window << " slowed the virtual clock down";
    previous_duration = result.virtual_duration_seconds;
  }
}

TEST(Engine, BreakerDrainMatchesSync) {
  // A hair-trigger breaker under heavy loss trips constantly; refused
  // evaluations complete instantly (draining the window) and the tallies
  // must still match the sync adapter exactly.
  RunConfig cfg;
  cfg.faults.timeout_probability = 0.9;
  cfg.retry_attempts = 1;
  cfg.breaker_threshold = 2;
  cfg.threads = 1;
  cfg.mode = EngineOptions::Mode::kSync;
  const CampaignResult sync_result = run_campaign(cfg);
  ASSERT_GT(sync_result.retry_stats.breaker_opened, 0u);
  ASSERT_GT(sync_result.retry_stats.breaker_skipped, 0u);
  cfg.mode = EngineOptions::Mode::kEvent;
  const CampaignResult event_result = run_campaign(cfg);
  EXPECT_EQ(fingerprint(event_result), fingerprint(sync_result));
}

TEST(Engine, EscalationUnderFaultMatchesSync) {
  // Lossy UDP with escalation enabled: flows migrate to TCP mid-run (the
  // paper's forced migration) — a per-chain state change the engine must
  // carry across loops and domains identically to the sync adapter.
  RunConfig cfg;
  cfg.faults.timeout_probability = 0.4;
  cfg.transport = googledns::Transport::kUdp;
  cfg.escalate = true;
  cfg.threads = 1;
  cfg.mode = EngineOptions::Mode::kSync;
  const CampaignResult sync_result = run_campaign(cfg);
  ASSERT_GT(sync_result.retry_stats.escalations, 0u);
  cfg.mode = EngineOptions::Mode::kEvent;
  const CampaignResult event_result = run_campaign(cfg);
  EXPECT_EQ(fingerprint(event_result), fingerprint(sync_result));
}

TEST(Engine, EventEngineCompressesVirtualTime) {
  // The point of the redesign: same probes, far less modeled wall time —
  // chain latency (timeouts, backoffs, RTTs) becomes pipeline depth.
  RunConfig cfg;
  cfg.faults.timeout_probability = 0.25;
  cfg.threads = 1;
  cfg.mode = EngineOptions::Mode::kSync;
  const CampaignResult sync_result = run_campaign(cfg);
  cfg.mode = EngineOptions::Mode::kEvent;
  const CampaignResult event_result = run_campaign(cfg);
  ASSERT_EQ(event_result.probes_sent, sync_result.probes_sent);
  ASSERT_GT(sync_result.virtual_duration_seconds, 0.0);
  ASSERT_GT(event_result.virtual_duration_seconds, 0.0);
  EXPECT_LE(event_result.virtual_duration_seconds * 3,
            sync_result.virtual_duration_seconds);
  EXPECT_GE(event_result.virtual_probes_per_second(),
            3 * sync_result.virtual_probes_per_second());
}

}  // namespace
}  // namespace netclients::core
