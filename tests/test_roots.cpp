// Tests for the root-server system: DITL capture policies, trace file
// round trips, NXDOMAIN/referral behaviour, anonymization, and letter
// selection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "net/rng.h"
#include "roots/root_server.h"
#include "roots/trace.h"

namespace netclients::roots {
namespace {

TEST(RootSystem, Ditl2020HasThirteenLetters) {
  const RootSystem system = RootSystem::ditl_2020(1);
  EXPECT_EQ(system.letters().size(), 13u);
}

TEST(RootSystem, UsableLettersAreTheSixCompleteOnes) {
  const RootSystem system = RootSystem::ditl_2020(1);
  const auto letters = system.usable_ditl_letters();
  const std::set<char> usable(letters.begin(), letters.end());
  EXPECT_EQ(usable, (std::set<char>{'a', 'd', 'h', 'j', 'k', 'm'}));
}

TEST(RootServer, JunkGetsNxdomainTldGetsReferral) {
  RootSystem system = RootSystem::ditl_2020(2);
  RootServer& root = system.root('j');
  const auto junk = dns::make_query(1, *dns::DnsName::parse("sdhfjssf"),
                                    dns::RecordType::kA, false);
  EXPECT_EQ(root.handle(junk, net::Ipv4Addr(1), 0.0).header.rcode,
            dns::RCode::kNxDomain);
  const auto legit = dns::make_query(
      2, *dns::DnsName::parse("www.example.com"), dns::RecordType::kA,
      false);
  const auto response = root.handle(legit, net::Ipv4Addr(1), 0.0);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(response.authorities.size(), 1u);
}

TEST(RootServer, ObserveCapturesSource) {
  RootSystem system = RootSystem::ditl_2020(3);
  RootServer& root = system.root('k');
  root.observe(*net::Ipv4Addr::parse("9.9.9.9"),
               *dns::DnsName::parse("abcdefgh"), dns::RecordType::kA, 5.0);
  ASSERT_EQ(root.trace().size(), 1u);
  EXPECT_EQ(root.trace()[0].source.to_string(), "9.9.9.9");
  EXPECT_EQ(root.trace()[0].root_letter, 'k');
  EXPECT_EQ(root.trace()[0].timestamp, 5.0);
}

TEST(RootServer, AnonymizedRootHidesSourceButKeepsConsistency) {
  RootSystem system = RootSystem::ditl_2020(4);
  RootServer& root = system.root('b');  // anonymized in our 2020 model
  ASSERT_TRUE(root.config().anonymized);
  const auto source = *net::Ipv4Addr::parse("9.9.9.9");
  root.observe(source, *dns::DnsName::parse("abcdefgh"),
               dns::RecordType::kA, 1.0);
  root.observe(source, *dns::DnsName::parse("zzzzzzzz"),
               dns::RecordType::kA, 2.0);
  ASSERT_EQ(root.trace().size(), 2u);
  EXPECT_NE(root.trace()[0].source, source);
  // Prefix-preserving-style anonymization: same source maps consistently.
  EXPECT_EQ(root.trace()[0].source, root.trace()[1].source);
}

TEST(RootServer, PartialRootCapturesFraction) {
  RootSystem system = RootSystem::ditl_2020(5);
  RootServer& root = system.root('c');  // partial captures
  ASSERT_FALSE(root.config().complete);
  for (int i = 0; i < 2000; ++i) {
    root.observe(net::Ipv4Addr(static_cast<std::uint32_t>(i)),
                 *dns::DnsName::parse("abcdefgh"), dns::RecordType::kA, i);
  }
  const double fraction = root.trace().size() / 2000.0;
  EXPECT_NEAR(fraction, root.config().capture_fraction, 0.05);
}

TEST(RootSystem, DitlTraceOnlyFromUsableLetters) {
  RootSystem system = RootSystem::ditl_2020(6);
  system.root('j').observe(net::Ipv4Addr(1),
                           *dns::DnsName::parse("aaaaaaaa"),
                           dns::RecordType::kA, 0);
  system.root('b').observe(net::Ipv4Addr(2),
                           *dns::DnsName::parse("bbbbbbbb"),
                           dns::RecordType::kA, 0);
  const auto trace = system.ditl_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].root_letter, 'j');
}

TEST(RootSystem, PickLetterStablePerResolverAndSpread) {
  const RootSystem system = RootSystem::ditl_2020(7);
  // Deterministic per (resolver, nonce).
  EXPECT_EQ(system.pick_letter(1, 2), system.pick_letter(1, 2));
  // A resolver concentrates on few letters but the population uses many.
  std::set<char> per_resolver;
  for (int nonce = 0; nonce < 200; ++nonce) {
    per_resolver.insert(system.pick_letter(1234, nonce));
  }
  EXPECT_LE(per_resolver.size(), 3u);
  std::set<char> population;
  for (int resolver = 0; resolver < 200; ++resolver) {
    population.insert(system.pick_letter(resolver, 0));
  }
  EXPECT_GE(population.size(), 10u);
}

TEST(TraceFile, RoundTrip) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    TraceRecord rec;
    rec.source = net::Ipv4Addr(static_cast<std::uint32_t>(i * 7919));
    rec.qname = *dns::DnsName::parse(i % 2 ? "sdhfjssf" : "www.example.com");
    rec.qtype = dns::RecordType::kA;
    rec.timestamp = i * 1.5;
    rec.root_letter = static_cast<char>('a' + i % 13);
    records.push_back(std::move(rec));
  }
  const std::string path = "trace_roundtrip_test.bin";
  ASSERT_TRUE(TraceFile::write(path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(TraceFile::read(path, &loaded));
  EXPECT_EQ(loaded, records);
  std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFileAndBadMagic) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(TraceFile::read("does_not_exist.bin", &loaded));
  const std::string path = "trace_badmagic_test.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE", f);
    std::fclose(f);
  }
  EXPECT_FALSE(TraceFile::read(path, &loaded));
  std::filesystem::remove(path);
}

TEST(TraceFile, RejectsTruncatedBody) {
  std::vector<TraceRecord> records(3);
  records[0].qname = *dns::DnsName::parse("aaaa");
  records[1].qname = *dns::DnsName::parse("bbbb");
  records[2].qname = *dns::DnsName::parse("cccc");
  const std::string path = "trace_truncated_test.bin";
  ASSERT_TRUE(TraceFile::write(path, records));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 4);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(TraceFile::read(path, &loaded));
  std::filesystem::remove(path);
}

TEST(TraceFile, TolerantReadKeepsRecordsBeforeTruncation) {
  std::vector<TraceRecord> records(3);
  records[0].qname = *dns::DnsName::parse("aaaa");
  records[1].qname = *dns::DnsName::parse("bbbb");
  records[2].qname = *dns::DnsName::parse("cccc");
  const std::string path = "trace_tolerant_trunc_test.bin";
  ASSERT_TRUE(TraceFile::write(path, records));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
  std::vector<TraceRecord> loaded;
  TraceFile::ReadStats stats;
  ASSERT_TRUE(TraceFile::read_tolerant(path, &loaded, &stats));
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], records[0]);
  EXPECT_EQ(loaded[1], records[1]);
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_EQ(stats.records_skipped, 1u);
  EXPECT_TRUE(stats.truncated);
  std::filesystem::remove(path);
}

TEST(TraceFile, TolerantReadStillRejectsBadHeader) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(TraceFile::read_tolerant("does_not_exist.bin", &loaded));
  const std::string path = "trace_tolerant_badmagic_test.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE", f);
    std::fclose(f);
  }
  EXPECT_FALSE(TraceFile::read_tolerant(path, &loaded));
  std::filesystem::remove(path);
}

TEST(TraceFile, TolerantReadSurvivesOverdeclaredCount) {
  // A header claiming far more records than the body holds (the classic
  // corrupt-length-field failure) must neither crash nor over-allocate.
  std::vector<TraceRecord> records(2);
  records[0].qname = *dns::DnsName::parse("aaaa");
  records[1].qname = *dns::DnsName::parse("bbbb");
  const std::string path = "trace_tolerant_count_test.bin";
  ASSERT_TRUE(TraceFile::write(path, records));
  {
    // Overwrite the u64 count at offset 4 with a huge value.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4, SEEK_SET);
    const std::uint64_t bogus = ~0ull;
    std::fwrite(&bogus, sizeof(bogus), 1, f);
    std::fclose(f);
  }
  std::vector<TraceRecord> loaded;
  TraceFile::ReadStats stats;
  ASSERT_TRUE(TraceFile::read_tolerant(path, &loaded, &stats));
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.records_skipped, ~0ull - 2);
  std::filesystem::remove(path);
}

TEST(TraceFile, TolerantReadSurvivesCorruptLabelLength) {
  std::vector<TraceRecord> records(3);
  records[0].qname = *dns::DnsName::parse("aaaa");
  records[1].qname = *dns::DnsName::parse("bbbb");
  records[2].qname = *dns::DnsName::parse("cccc");
  const std::string path = "trace_tolerant_label_test.bin";
  ASSERT_TRUE(TraceFile::write(path, records));
  {
    // Flip the second record's label-length byte to run past end-of-file.
    // Record layout: 4+8 header, then per record 4+1+2+8+1 fixed + labels.
    const long offset = 12 + (16 + 1 + 4) + 16;
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  std::vector<TraceRecord> loaded;
  TraceFile::ReadStats stats;
  ASSERT_TRUE(TraceFile::read_tolerant(path, &loaded, &stats));
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], records[0]);
  EXPECT_EQ(stats.records_skipped, 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace netclients::roots
