// Packet-framed (NCP1) trace suite (labels: determinism, tsan): the
// capture-shaped sibling of test_trace_view. write_packet_trace must
// round-trip records through real RFC 1035 packets, the framing cursor
// must skip-and-count damaged tails exactly like the NCD1 cursor, and
// ChromiumCounter::process_packets — which pays a full zero-copy wire
// parse per packet inside the parallel scan — must produce byte-identical
// results to the materializing process() over the same records at every
// thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/chromium/chromium.h"
#include "dns/packet.h"
#include "net/rng.h"
#include "roots/packet_trace.h"
#include "roots/root_server.h"
#include "roots/trace.h"
#include "sim/ditl.h"
#include "sim/world.h"

namespace netclients::core {
namespace {

constexpr double kSampleRate = 1.0 / 4;

// One sampled DITL capture shared by every case in this (batch) binary.
struct PacketFixture {
  std::string path = "packet_trace_fixture.trace";
  std::vector<roots::TraceRecord> records;

  PacketFixture() {
    sim::WorldConfig config;
    config.scale = 1.0 / 8192;
    const sim::World world = sim::World::generate(config);
    const roots::RootSystem roots = roots::RootSystem::ditl_2020(config.seed);
    sim::DitlOptions ditl;
    ditl.sample_rate = kSampleRate;
    sim::generate_ditl(world, roots, ditl,
                       [&](const roots::TraceRecord& rec) {
                         records.push_back(rec);
                       });
    EXPECT_TRUE(roots::write_packet_trace(path, records));
  }
};

const PacketFixture& fixture() {
  static PacketFixture* f = new PacketFixture;
  return *f;
}

bool identical(const ChromiumResult& a, const ChromiumResult& b) {
  return a.records_scanned == b.records_scanned &&
         a.signature_matches == b.signature_matches &&
         a.rejected_collisions == b.rejected_collisions &&
         a.probes_by_resolver == b.probes_by_resolver;
}

TEST(PacketTrace, WriteOpenRoundTripsEveryRecord) {
  const auto& f = fixture();
  const auto view = roots::PacketTraceView::open(f.path);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->declared_count(), f.records.size());

  roots::PacketTraceView::Cursor cursor = view->cursor();
  roots::PacketRecordRef ref;
  std::size_t i = 0;
  while (cursor.next(&ref)) {
    ASSERT_LT(i, f.records.size());
    const roots::TraceRecord& expected = f.records[i];
    EXPECT_EQ(ref.source(), expected.source);
    EXPECT_EQ(ref.root_letter(), expected.root_letter);
    EXPECT_EQ(ref.timestamp(), expected.timestamp);
    // The payload is a real packet: parse it and compare the question.
    const auto msg = dns::MessageView::parse(ref.wire());
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->question_count(), 1u);
    EXPECT_TRUE(msg->first_question().name.equals(expected.qname));
    EXPECT_EQ(msg->first_question().type, expected.qtype);
    EXPECT_FALSE(msg->header().rd);
    ++i;
  }
  EXPECT_EQ(i, f.records.size());
  const auto stats = view->validate();
  EXPECT_EQ(stats.records_read, f.records.size());
  EXPECT_EQ(stats.records_skipped, 0u);
  EXPECT_FALSE(stats.truncated);
}

TEST(PacketTrace, ProcessPacketsMatchesMaterializingProcess) {
  const auto& f = fixture();
  ChromiumOptions options;
  options.sample_rate = kSampleRate;
  const ChromiumResult reference = ChromiumCounter(options).process(f.records);
  EXPECT_GT(reference.signature_matches, 0u);
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t chunk : {std::size_t{256}, std::size_t{1} << 15}) {
      ChromiumOptions check = options;
      check.threads = threads;
      check.chunk_records = chunk;
      const auto result =
          ChromiumCounter(check).process_packet_file(f.path);
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(identical(*result, reference))
          << "threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(result->records_skipped, 0u);
    }
  }
}

TEST(PacketTrace, DamagedTailSkipsAndCounts) {
  const auto& f = fixture();
  ASSERT_GT(f.records.size(), 8u);
  // Truncate the file mid-frame: everything before the cut survives, the
  // declared remainder is counted as skipped — never an error.
  std::vector<char> bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string cut_path = "packet_trace_cut.trace";
  {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * 3 / 4));
  }
  const auto view = roots::PacketTraceView::open(cut_path);
  ASSERT_TRUE(view.has_value());
  const auto stats = view->validate();
  EXPECT_LT(stats.records_read, f.records.size());
  EXPECT_EQ(stats.records_read + stats.records_skipped, f.records.size());
  EXPECT_TRUE(stats.truncated);

  ChromiumOptions options;
  options.sample_rate = kSampleRate;
  const auto result = ChromiumCounter(options).process_packet_file(cut_path);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records_scanned, stats.records_read);
  EXPECT_EQ(result->records_skipped, stats.records_skipped);
  std::filesystem::remove(cut_path);
}

TEST(PacketTrace, CorruptPacketIsScannedNonMatchNotFramingError) {
  // Flip bytes inside one packet's DNS payload (not its capture header):
  // framing still walks the full file, the packet just fails to parse in
  // the scan — records_scanned is unchanged, skip count stays zero.
  const auto& f = fixture();
  std::vector<char> bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // First frame starts at 12; its packet bytes start 15 further in.
  // Zero the packet's header counts region to make it unparseable.
  for (std::size_t b = 12 + 15; b < 12 + 15 + 12 && b < bytes.size(); ++b) {
    bytes[b] = static_cast<char>(0xFF);
  }
  const std::string corrupt_path = "packet_trace_corrupt.trace";
  {
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto view = roots::PacketTraceView::open(corrupt_path);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->validate().records_read, f.records.size());

  ChromiumOptions options;
  options.sample_rate = kSampleRate;
  const auto clean = ChromiumCounter(options).process_packet_file(f.path);
  const auto corrupt =
      ChromiumCounter(options).process_packet_file(corrupt_path);
  ASSERT_TRUE(clean.has_value() && corrupt.has_value());
  EXPECT_EQ(corrupt->records_scanned, clean->records_scanned);
  EXPECT_EQ(corrupt->records_skipped, 0u);
  EXPECT_LE(corrupt->signature_matches, clean->signature_matches);
  std::filesystem::remove(corrupt_path);
}

TEST(PacketTrace, OpenRejectsWrongMagicAndMissingFile) {
  EXPECT_FALSE(roots::PacketTraceView::open("no_such_file.trace").has_value());
  const std::string bad_path = "packet_trace_bad_magic.trace";
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write("NCD1\0\0\0\0\0\0\0\0", 12);  // record-framed magic, not NCP1
  }
  EXPECT_FALSE(roots::PacketTraceView::open(bad_path).has_value());
  std::filesystem::remove(bad_path);
}

TEST(PacketTrace, FuzzedFramesNeverCrash) {
  net::Rng rng(0x9C);
  const auto& f = fixture();
  std::vector<char> clean;
  {
    std::ifstream in(f.path, std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string fuzz_path = "packet_trace_fuzz.trace";
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<char> bytes = clean;
    const int mutations = 1 + static_cast<int>(rng.below(6));
    for (int m = 0; m < mutations && !bytes.empty(); ++m) {
      if (rng.bernoulli(0.3)) {
        bytes.resize(rng.below(bytes.size() + 1));
      } else if (!bytes.empty()) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<char>(1 + rng.below(255));
      }
    }
    {
      std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const auto view = roots::PacketTraceView::open(fuzz_path);
    if (!view) continue;  // header damaged: rejected, fine
    const auto stats = view->validate();
    EXPECT_EQ(stats.records_read + stats.records_skipped,
              view->declared_count());
    ChromiumOptions options;
    options.sample_rate = kSampleRate;
    // The scan must terminate and never read past the mapping, whatever
    // survived the mutation.
    (void)ChromiumCounter(options).process_packets(*view);
  }
  std::filesystem::remove(fuzz_path);
}

}  // namespace
}  // namespace netclients::core
